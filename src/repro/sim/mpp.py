"""Multi-part payments (MPP): atomic partial holds with a shared deadline.

Flash splits elephant payments across multiple paths inside one routing
decision; BOLT #4's Basic MPP goes further and makes splitting a
protocol feature — a payment fans out into N independent **parts**,
each routed and escrowed on its own, that settle **all-or-nothing**:
the receiver either collects every part or none, and any part that
fails (or the shared deadline passing) refunds every sibling part's
escrow and fees exactly.

This module is engine-agnostic glue shared by all three engines:

* :class:`MppConfig` — the MPP knob set, with the same
  ``validate``/``from_params``/``to_params`` contract as
  :class:`~repro.sim.concurrent.ConcurrencyConfig` (it is the store
  cell-key representation, folded into digests only when MPP is on);
* :func:`split_amounts` — the configurable split policies (``equal`` /
  ``proportional`` / ``flash``), all exactly conserving the parent
  amount in float arithmetic (the last part absorbs the remainder);
* :func:`execute_parts_atomically` — the sequential-settle core used
  by :func:`repro.sim.engine.run_simulation` and
  :func:`repro.network.dynamics.run_dynamic_simulation`: parts reserve
  one by one through a deferring ledger, and only when *every* part is
  escrowed do the holds settle, at one observable instant.  The
  concurrent engine implements the same contract on its event queue
  (parts retry independently before a shared deadline) — see
  :mod:`repro.sim.concurrent`.

MPP-free runs never import this machinery at routing time: engines keep
their original code path byte-for-byte when ``mpp is None``, which is
what keeps the sequential golden pin and every store digest unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, fields, replace

from repro.traces.workload import Transaction

#: The recognised split policies, in documentation order.
SPLIT_POLICIES: tuple[str, ...] = ("equal", "proportional", "flash")


@dataclass(frozen=True)
class MppConfig:
    """The multi-part payment knobs (times in simulated seconds).

    ``max_parts`` caps the fan-out; ``split`` picks the policy
    (``equal`` parts, ``proportional`` to the sender's local outbound
    balances, or ``flash``-style geometric halving).  ``threshold`` is
    the amount floor for splitting — payments below it stay single-part
    — with ``0.0`` meaning "use the engine's elephant threshold".
    ``min_part_amount`` keeps splits from producing dust parts (the
    part count shrinks until every part clears it).

    ``part_retries`` / ``part_retry_delay`` bound per-part re-attempts:
    the sequential engines retry a failed part immediately (capacity
    may differ because sibling holds moved the balance picture), the
    concurrent engine re-schedules the part ``part_retry_delay`` later.
    ``deadline`` is the shared all-or-nothing deadline: on the
    concurrent engine every part must be escrowed and settle-ready
    within ``deadline`` seconds of the payment's start, or every
    sibling hold is refunded and the payment fails ``timed_out``.
    """

    max_parts: int = 4
    split: str = "equal"
    threshold: float = 0.0
    min_part_amount: float = 1.0
    part_retries: int = 1
    part_retry_delay: float = 1.0
    deadline: float = 30.0

    def validate(self) -> None:
        """Raise :class:`ValueError` on out-of-range knob values."""
        if self.max_parts < 1:
            raise ValueError(f"max_parts must be >= 1, got {self.max_parts}")
        if self.split not in SPLIT_POLICIES:
            names = ", ".join(SPLIT_POLICIES)
            raise ValueError(
                f"unknown split policy {self.split!r} (known: {names})"
            )
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")
        if self.min_part_amount <= 0:
            raise ValueError(
                f"min_part_amount must be positive, got {self.min_part_amount}"
            )
        if self.part_retries < 0:
            raise ValueError(
                f"part_retries must be >= 0, got {self.part_retries}"
            )
        if self.part_retry_delay < 0:
            raise ValueError(
                f"part_retry_delay must be >= 0, got {self.part_retry_delay}"
            )
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")

    @classmethod
    def from_params(
        cls, params: Mapping[str, object] | None = None
    ) -> "MppConfig":
        """Build from a knob mapping; unknown keys and bad values raise.

        The single coercion point for MPP parameters coming from
        scenario registrations, CLI flags, and store cell keys.
        """
        known = {spec.name for spec in fields(cls)}
        kwargs: dict[str, object] = {}
        for key, value in dict(params or {}).items():
            if key not in known:
                names = ", ".join(sorted(known))
                raise ValueError(
                    f"unknown mpp parameter {key!r} (known: {names})"
                )
            if key in ("max_parts", "part_retries"):
                kwargs[key] = int(value)
            elif key == "split":
                kwargs[key] = str(value)
            else:
                kwargs[key] = float(value)
        config = cls(**kwargs)
        config.validate()
        return config

    def to_params(self) -> dict[str, object]:
        """Every knob as a plain dict — the store cell-key representation.

        Always fully resolved (defaults included), so an explicitly
        passed default and an omitted knob hash identically.  The whole
        block only enters a cell digest when MPP is enabled, so MPP-free
        cells keep their pre-MPP digests.
        """
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


def split_amounts(
    config: MppConfig,
    amount: float,
    threshold: float,
    graph=None,
    sender=None,
) -> list[float]:
    """Split ``amount`` into part amounts under ``config``'s policy.

    Payments below ``threshold`` (the resolved splitting floor) stay
    whole.  Every policy conserves the parent amount *exactly* in float
    arithmetic — the last part is computed as the remainder — and never
    emits a part below ``min_part_amount`` (the part count shrinks
    instead).  ``proportional`` weights parts by the sender's local
    outbound balances (information a sender holds for free, §3.1), with
    a deterministic tie-break on the textual peer id; it needs ``graph``
    and ``sender`` and falls back to ``equal`` when the sender has
    fewer than two funded channels.
    """
    if amount < threshold:
        return [amount]
    parts = min(config.max_parts, int(amount // config.min_part_amount))
    if parts <= 1:
        return [amount]
    if config.split == "flash":
        # Geometric halving: 1/2, 1/4, ... with the final part matching
        # the smallest slice (and absorbing the float remainder).
        while parts > 1 and amount / (2 ** (parts - 1)) < config.min_part_amount:
            parts -= 1
        if parts <= 1:
            return [amount]
        head = [amount / (2.0**i) for i in range(1, parts)]
        return head + [amount - sum(head)]
    if config.split == "proportional" and graph is not None:
        weights = sorted(
            (
                (graph.balance(sender, peer), str(peer))
                for peer in graph.neighbors(sender)
                if graph.balance(sender, peer) > 0.0
            ),
            key=lambda item: (-item[0], item[1]),
        )
        while len(weights) >= 2:
            chosen = weights[: min(parts, len(weights))]
            total = sum(balance for balance, _ in chosen)
            head = [
                amount * balance / total for balance, _ in chosen[:-1]
            ]
            split = head + [amount - sum(head)]
            if min(split) >= config.min_part_amount:
                return split
            weights = weights[:-1]
        # Fewer than two funded channels: fall through to equal.
    base = amount / parts
    head = [base] * (parts - 1)
    return head + [amount - sum(head)]


@dataclass
class MppOutcome:
    """What one multi-part execution did, for the engine's record.

    ``partial_releases`` counts sibling parts whose escrow was refunded
    because a later part failed — the observable footprint of the
    all-or-nothing abort (0 on success and on single-part payments).
    """

    success: bool
    fee: float
    transfers: list
    parts: int
    attempts: int
    partial_releases: int


def execute_parts_atomically(
    graph,
    router,
    ledger,
    transaction: Transaction,
    amounts: Sequence[float],
    part_retries: int,
) -> MppOutcome:
    """Reserve every part, then settle all — or refund all — at once.

    The sequential engines' MPP core: each part is routed by the
    unmodified router through a deferring ledger
    (:class:`~repro.sim.concurrent.HoldLedger` semantics — ``begin`` /
    ``collect`` bracket each route, commit stages holds instead of
    settling).  A failed part is retried up to ``part_retries`` times
    immediately; if it still fails, every sibling's staged holds are
    released in reverse placement order and nothing settles.  Only when
    the last part is escrowed do all holds settle, in placement order,
    at one observable instant — at no point is the payment partially
    settled.
    """
    all_holds: list = []
    all_transfers: list = []
    total_fee = 0.0
    attempts = 0
    reserved_parts = 0
    for part_amount in amounts:
        part = (
            transaction
            if part_amount == transaction.amount
            else replace(transaction, amount=part_amount)
        )
        reserved = False
        for _ in range(part_retries + 1):
            ledger.begin()
            outcome = router.route(part)
            holds, transfers = ledger.collect()
            attempts += 1
            if outcome.success:
                all_holds.extend(holds)
                all_transfers.extend(transfers or list(outcome.transfers))
                total_fee += outcome.fee
                reserved = True
                reserved_parts += 1
                break
            # Defensive: a failed route must not leave escrow behind.
            for u, v, held in reversed(holds):
                graph.release_hold(u, v, held)
        if not reserved:
            # All-or-nothing abort: refund every sibling's escrow.
            for u, v, held in reversed(all_holds):
                graph.release_hold(u, v, held)
            return MppOutcome(
                success=False,
                fee=0.0,
                transfers=[],
                parts=len(amounts),
                attempts=attempts,
                partial_releases=reserved_parts,
            )
    for u, v, held in all_holds:
        graph.settle_hold(u, v, held)
    return MppOutcome(
        success=True,
        fee=total_fee,
        transfers=all_transfers,
        parts=len(amounts),
        attempts=attempts,
        partial_releases=0,
    )
