"""Unit tests for fee policies."""

import random

import pytest

from repro.network.fees import (
    LinearFee,
    QuadraticFee,
    ZeroFee,
    path_fee,
    sample_paper_fee,
)


class TestPolicies:
    def test_zero_fee(self):
        assert ZeroFee().fee(123.0) == 0.0
        assert ZeroFee().marginal_rate(123.0) == 0.0

    def test_linear_fee(self):
        policy = LinearFee(base=2.0, rate=0.01)
        assert policy.fee(100.0) == pytest.approx(3.0)
        assert policy.marginal_rate(100.0) == pytest.approx(0.01)

    def test_linear_base_only_when_used(self):
        policy = LinearFee(base=2.0, rate=0.01)
        assert policy.fee(0.0) == 0.0

    def test_linear_rejects_negative(self):
        with pytest.raises(ValueError):
            LinearFee(base=-1.0)

    def test_quadratic_fee_convex(self):
        policy = QuadraticFee(rate=0.01, quad=0.001)
        # Marginal rate must be non-decreasing (convexity).
        assert policy.marginal_rate(10.0) < policy.marginal_rate(20.0)

    def test_quadratic_fee_value(self):
        policy = QuadraticFee(base=1.0, rate=0.1, quad=0.01)
        assert policy.fee(10.0) == pytest.approx(1.0 + 1.0 + 1.0)

    def test_path_fee_sums(self):
        policies = [LinearFee(rate=0.01), LinearFee(rate=0.02)]
        assert path_fee(policies, 100.0) == pytest.approx(3.0)


class TestPaperFeeMix:
    def test_rates_in_range(self):
        rng = random.Random(0)
        for _ in range(500):
            policy = sample_paper_fee(rng)
            assert 0.001 <= policy.rate < 0.10

    def test_mix_ratio(self):
        rng = random.Random(1)
        samples = [sample_paper_fee(rng).rate for _ in range(5_000)]
        high = sum(1 for rate in samples if rate >= 0.01)
        # 10% of channels charge 1%-10%; allow sampling slack.
        assert 0.06 < high / len(samples) < 0.14
