"""The mice routing table (§3.3, "Path finding").

Each node keeps a table of precomputed paths per *receiver*.  On first
contact with a receiver the node computes the top-``m`` shortest paths with
Yen's algorithm on its local topology and caches them; recurring payments
(the vast majority, §2.2) become pure table lookups.  The table supports
the three maintenance behaviours the paper describes:

* **refresh** — recompute every entry when the gossiped topology changes;
* **replacement** — when a payment finds a cached path dead (zero
  effective capacity or broken connectivity), replace it with the *next*
  shortest path;
* **timeout** — entries untouched for longer than ``entry_ttl`` are
  evicted to bound the table size.

Our library manages one logical network, so the table is keyed by
``(sender, receiver)`` — each sender's slice is exactly the per-node table
of the paper.

Beyond the per-pair entries, the table keeps one *structural BFS layer*
per sender: the BFS spanning tree rooted at the sender, which yields the
first (fewest-hop) path to **every** receiver.  A miss for a new receiver
of a known sender then skips Yen's initial BFS, and the tree is shared
across all ``(sender, *)`` pairs until the topology changes (detected via
a topology token; :meth:`refresh` also drops the trees explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.channel import NodeId
from repro.network.compact import CompactTopology
from repro.network.paths import Adjacency, bfs_tree_parents, yen_k_shortest_paths

Path = list[NodeId]


def _topology_token(topology: Adjacency) -> tuple:
    """Cheap change-detection token for the cached BFS trees.

    The cache also keeps a strong reference to the topology object and
    validates it with ``is`` (so a recycled ``id`` can never alias a new
    object); the token only guards against *in-place* mutation.  Compact
    topologies are immutable snapshots, so their build version suffices.
    Plain mappings are fingerprinted by size and degree sum — callers
    that rewire a mapping in place while keeping those constant must
    call :meth:`RoutingTable.refresh` (the paper's topology-update hook)
    to invalidate.
    """
    if isinstance(topology, CompactTopology):
        return (topology.version, topology.num_slots)
    return (
        len(topology),
        sum(len(neighbors) for neighbors in topology.values()),
    )


@dataclass
class TableEntry:
    """Cached paths for one (sender, receiver) pair."""

    paths: list[Path]
    last_used: float = 0.0
    #: How many Yen paths have been consumed for this pair, including
    #: replaced ones — lets replacement continue where the ranking left off.
    yen_cursor: int = 0
    hits: int = 0
    misses: int = 0


@dataclass
class RoutingTable:
    """Per-(sender, receiver) cache of top-``m`` shortest paths."""

    m: int = 4
    entry_ttl: float = float("inf")
    max_entries: int | None = None
    _entries: dict[tuple[NodeId, NodeId], TableEntry] = field(default_factory=dict)
    #: sender -> (topology object, token, BFS spanning-tree parents).  The
    #: topology reference pins the object alive so identity checks are
    #: sound; the cache is bounded by MAX_SOURCE_LAYERS (oldest evicted).
    _source_layers: dict[
        NodeId, tuple[Adjacency, tuple, dict[NodeId, NodeId]]
    ] = field(default_factory=dict, repr=False)

    #: Upper bound on cached per-source BFS trees (each is O(V)).
    MAX_SOURCE_LAYERS = 128

    def __post_init__(self) -> None:
        if self.m < 0:
            raise ValueError(f"m must be non-negative, got {self.m}")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pair: tuple[NodeId, NodeId]) -> bool:
        return pair in self._entries

    # ------------------------------------------------- structural BFS layer

    def _source_tree(
        self, sender: NodeId, topology: Adjacency
    ) -> dict[NodeId, NodeId]:
        """BFS parent pointers rooted at ``sender`` (cached per source)."""
        token = _topology_token(topology)
        cached = self._source_layers.get(sender)
        if cached is not None and cached[0] is topology and cached[1] == token:
            return cached[2]
        parents = bfs_tree_parents(topology, sender)
        self._source_layers[sender] = (topology, token, parents)
        while len(self._source_layers) > self.MAX_SOURCE_LAYERS:
            oldest = next(iter(self._source_layers))
            del self._source_layers[oldest]
        return parents

    def _first_path(
        self, sender: NodeId, receiver: NodeId, topology: Adjacency
    ) -> Path | None:
        """Fewest-hop path read off the cached source tree, or ``None``.

        BFS assigns each node's parent at first discovery, so the tree
        path is exactly what ``bfs_shortest_path`` would return.
        """
        parents = self._source_tree(sender, topology)
        if receiver not in parents:
            return None
        path = [receiver]
        while path[-1] != sender:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    def invalidate_structural_cache(self) -> None:
        """Drop every cached per-source BFS tree."""
        self._source_layers.clear()

    def _ranked_paths(
        self, sender: NodeId, receiver: NodeId, topology: Adjacency, k: int
    ) -> list[Path]:
        """Top-``k`` Yen paths, seeded by the cached source tree."""
        if k <= 0:
            return []
        first = self._first_path(sender, receiver, topology)
        if first is None:
            return []
        return yen_k_shortest_paths(
            topology, sender, receiver, k, first=first
        )

    # -------------------------------------------------------------- lookups

    def lookup(
        self,
        sender: NodeId,
        receiver: NodeId,
        topology: Adjacency,
        now: float = 0.0,
    ) -> TableEntry:
        """Fetch (or compute on first use) the entry for a pair."""
        pair = (sender, receiver)
        entry = self._entries.get(pair)
        if entry is None:
            paths = self._ranked_paths(sender, receiver, topology, self.m)
            entry = TableEntry(paths=paths, last_used=now, yen_cursor=len(paths))
            entry.misses += 1
            self._entries[pair] = entry
            self._enforce_capacity()
        else:
            entry.hits += 1
            entry.last_used = now
        return entry

    def replace_path(
        self,
        sender: NodeId,
        receiver: NodeId,
        dead_path: Path,
        topology: Adjacency,
    ) -> Path | None:
        """Swap a dead path for the next-ranked Yen path (§3.3).

        Returns the replacement, or ``None`` when the topology has no
        further distinct path (the dead one is then simply dropped).
        """
        pair = (sender, receiver)
        entry = self._entries.get(pair)
        if entry is None or dead_path not in entry.paths:
            return None
        ranked = self._ranked_paths(
            sender, receiver, topology, entry.yen_cursor + 1
        )
        replacement = None
        existing = {tuple(path) for path in entry.paths}
        for candidate in ranked[entry.yen_cursor:]:
            if tuple(candidate) not in existing:
                replacement = candidate
                break
        entry.yen_cursor = max(entry.yen_cursor + 1, len(ranked))
        index = entry.paths.index(dead_path)
        if replacement is None:
            del entry.paths[index]
            return None
        entry.paths[index] = replacement
        return replacement

    def refresh(self, topology: Adjacency) -> None:
        """Recompute every entry against an updated topology (§3.3)."""
        self.invalidate_structural_cache()
        for (sender, receiver), entry in list(self._entries.items()):
            paths = self._ranked_paths(sender, receiver, topology, self.m)
            entry.paths = paths
            entry.yen_cursor = len(paths)

    def evict_stale(self, now: float) -> int:
        """Drop entries idle for longer than ``entry_ttl``; returns count."""
        if self.entry_ttl == float("inf"):
            return 0
        stale = [
            pair
            for pair, entry in self._entries.items()
            if now - entry.last_used > self.entry_ttl
        ]
        for pair in stale:
            del self._entries[pair]
        return len(stale)

    def _enforce_capacity(self) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            oldest = min(self._entries, key=lambda pair: self._entries[pair].last_used)
            del self._entries[oldest]

    @property
    def hit_ratio(self) -> float:
        hits = sum(entry.hits for entry in self._entries.values())
        misses = sum(entry.misses for entry in self._entries.values())
        total = hits + misses
        return hits / total if total else 0.0
