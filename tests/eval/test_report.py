"""Tests for the headline report generator and golden drift checks."""

import pytest

import repro.scenarios as scenarios
from repro.eval.report import (
    TABLES,
    check_golden,
    generate_report,
    report_factories,
)

from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden" / "report_smoke"
SCHEMES = ("Flash", "Spider", "SpeedyMurmurs", "Shortest Path", "Landmark")


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    """One smoke-matrix report, shared by every test in this module."""
    out_dir = tmp_path_factory.mktemp("report")
    return generate_report(out_dir, smoke=True)


class TestMatrix:
    def test_flash_and_all_four_baselines(self):
        assert tuple(report_factories()) == SCHEMES

    def test_default_matrix_covers_both_snapshots(self):
        names = [s.name for s in scenarios.report_scenarios()]
        assert "ripple-snapshot" in names
        assert "lightning-snapshot" in names

    def test_full_matrix_uses_at_least_three_seeds(self):
        for scenario in scenarios.report_scenarios():
            runs, _ = scenario.eval_matrix.config(smoke=False)
            assert runs >= 3, scenario.name

    def test_smoke_matrix_is_snapshots_plus_concurrent_cell(self):
        names = [s.name for s in scenarios.report_scenarios(smoke=True)]
        assert names == [
            "lightning-snapshot",
            "payment-storm",
            "ripple-snapshot",
        ]

    def test_smoke_matrix_has_one_concurrent_cell(self):
        engines = {
            s.name: s.engine for s in scenarios.report_scenarios(smoke=True)
        }
        assert engines["payment-storm"] == "concurrent"
        assert sum(1 for e in engines.values() if e == "concurrent") == 1


class TestGeneratedArtifacts:
    def test_all_tables_written(self, smoke_report):
        # Optional-metric tables appear only when some record carries
        # the metric: the smoke matrix has a concurrent cell (latency
        # and timeout tables) but no fault scenario, so the resilience
        # tables are skipped and the goldens stay fault-free.
        expected = {
            t.slug
            for t in TABLES
            if not t.optional_metric
            or t.slug in ("latency_p95", "timeout_failures")
        }
        assert set(smoke_report.tables) == expected
        for path in smoke_report.tables.values():
            assert path.exists()

    def test_figures_written_for_chart_tables(self, smoke_report):
        chart_slugs = {
            t.slug
            for t in TABLES
            if t.chart and t.slug in smoke_report.tables
        }
        assert set(smoke_report.figures) == chart_slugs
        for path in smoke_report.figures.values():
            assert path.suffix in (".png", ".svg")
            assert path.stat().st_size > 0

    def test_tables_cover_every_scheme(self, smoke_report):
        text = smoke_report.tables["success_ratio"].read_text()
        for scheme in SCHEMES:
            assert f"| {scheme} |" in text

    def test_report_md_links_methodology_and_scenarios(self, smoke_report):
        text = smoke_report.report_path.read_text()
        assert "docs/RESULTS.md" in text
        assert "ripple-snapshot" in text and "lightning-snapshot" in text

    def test_summary_json_canonical(self, smoke_report):
        import json

        from repro.eval.store import CANONICAL_DIGITS, canonical_json

        text = smoke_report.summary_path.read_text().strip()
        assert text == canonical_json(
            json.loads(text), float_digits=CANONICAL_DIGITS
        )

    def test_records_store_populated(self, smoke_report):
        from repro.eval.store import ExperimentStore

        store = ExperimentStore(smoke_report.out_dir)
        # 3 scenarios x 2 seeds x 5 schemes
        assert len(store) == 30


class TestDeterminismAndResume:
    def test_matches_committed_goldens(self, smoke_report):
        problems = check_golden(smoke_report.out_dir / "tables", GOLDEN_DIR)
        assert problems == [], "\n".join(problems)

    def test_regeneration_resumes_and_is_byte_identical(self, smoke_report):
        before_records = (
            smoke_report.out_dir / "records.jsonl"
        ).read_bytes()
        before_tables = {
            slug: path.read_bytes()
            for slug, path in smoke_report.tables.items()
        }
        again = generate_report(smoke_report.out_dir, smoke=True)
        assert (
            smoke_report.out_dir / "records.jsonl"
        ).read_bytes() == before_records
        for slug, path in again.tables.items():
            assert path.read_bytes() == before_tables[slug], slug


class TestFaultReport:
    def test_fault_scenario_populates_resilience_tables(self, tmp_path):
        report = generate_report(
            tmp_path / "fault",
            scenario_names=["ripple-jammed"],
            runs=1,
            transactions=30,
        )
        for slug in (
            "attack_success_ratio",
            "resilience_delta",
            "recovery_half_life",
            "adversary_escrow",
        ):
            assert slug in report.tables, slug
            assert "ripple-jammed" in report.tables[slug].read_text()
        assert "attack_success_ratio" in report.figures


class TestGoldenChecker:
    def test_detects_numeric_drift(self, smoke_report, tmp_path):
        golden = tmp_path / "golden"
        golden.mkdir()
        for path in smoke_report.tables.values():
            (golden / path.name).write_text(path.read_text())
        target = golden / "success_ratio.md"
        # Perturb one numeric cell beyond tolerance.
        text = target.read_text()
        import re

        drifted = re.sub(r"(\d+\.\d+)", lambda m: "99.99", text, count=1)
        assert drifted != text
        target.write_text(drifted)
        problems = check_golden(smoke_report.out_dir / "tables", golden)
        assert any("drifts from golden" in p for p in problems)

    def test_detects_missing_generated_table(self, smoke_report, tmp_path):
        golden = tmp_path / "golden"
        golden.mkdir()
        (golden / "brand_new_table.md").write_text("| a |\n| 1 |\n")
        problems = check_golden(smoke_report.out_dir / "tables", golden)
        assert any("not generated" in p for p in problems)

    def test_detects_uncommitted_generated_table(self, smoke_report, tmp_path):
        golden = tmp_path / "golden"
        golden.mkdir()
        (golden / "success_ratio.md").write_text(
            smoke_report.tables["success_ratio"].read_text()
        )
        problems = check_golden(smoke_report.out_dir / "tables", golden)
        assert any("missing from goldens" in p for p in problems)

    def test_missing_golden_dir_is_a_problem(self, smoke_report, tmp_path):
        problems = check_golden(
            smoke_report.out_dir / "tables", tmp_path / "nope"
        )
        assert problems and "does not exist" in problems[0]

    def test_text_change_is_drift(self, smoke_report, tmp_path):
        golden = tmp_path / "golden"
        golden.mkdir()
        for path in smoke_report.tables.values():
            (golden / path.name).write_text(
                path.read_text().replace("Flash", "Flashy")
            )
        problems = check_golden(smoke_report.out_dir / "tables", golden)
        assert problems
