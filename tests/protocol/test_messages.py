"""Tests for the Table-1 message format and wire encoding."""

import pytest

from repro.errors import ProtocolError
from repro.protocol.messages import Message, MessageType, sub_payment_id


def probe(path=(0, 1, 2), index=0):
    return Message(trans_id="tx1.1", mtype=MessageType.PROBE, path=path, index=index)


class TestTableOneFields:
    def test_all_fields_present(self):
        """The message carries exactly Table 1: TransID, Type, Path,
        Capacity, Commit (plus the routing cursor and free payload)."""
        message = probe()
        assert message.trans_id == "tx1.1"
        assert message.mtype is MessageType.PROBE
        assert message.path == (0, 1, 2)
        assert message.capacity == ()
        assert message.commit == 0.0

    def test_all_nine_types_exist(self):
        names = {t.value for t in MessageType}
        assert names == {
            "PROBE",
            "PROBE_ACK",
            "COMMIT",
            "COMMIT_ACK",
            "COMMIT_NACK",
            "CONFIRM",
            "CONFIRM_ACK",
            "REVERSE",
            "REVERSE_ACK",
        }


class TestNavigation:
    def test_current_and_next(self):
        message = probe(index=1)
        assert message.current == 1
        assert message.next_hop == 2

    def test_forwarded_advances(self):
        assert probe().forwarded().index == 1

    def test_at_end(self):
        assert probe(index=2).at_end

    def test_next_hop_at_end_rejected(self):
        with pytest.raises(ProtocolError):
            probe(index=2).next_hop

    def test_reply_reverses_traversed_prefix(self):
        message = probe(path=(0, 1, 2, 3), index=2)
        reply = message.reply(MessageType.PROBE_ACK)
        assert reply.path == (2, 1, 0)
        assert reply.index == 0

    def test_invalid_index_rejected(self):
        with pytest.raises(ProtocolError):
            probe(index=5)

    def test_empty_path_rejected(self):
        with pytest.raises(ProtocolError):
            Message(trans_id="x", mtype=MessageType.PROBE, path=())


class TestWireFormat:
    def test_round_trip(self):
        message = Message(
            trans_id="tx9.2",
            mtype=MessageType.COMMIT,
            path=(5, 6, 7),
            index=1,
            capacity=((10.0, 3.0),),
            commit=42.5,
            payload={"note": "hi"},
        )
        assert Message.decode(message.encode()) == message

    def test_malformed_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            Message.decode(b"not json")

    def test_missing_field_rejected(self):
        with pytest.raises(ProtocolError):
            Message.decode(b'{"trans_id": "x"}')

    def test_unknown_type_rejected(self):
        raw = probe().encode().replace(b"PROBE", b"BOGUS")
        with pytest.raises(ProtocolError):
            Message.decode(raw)


class TestSubPaymentIds:
    def test_unique_per_attempt(self):
        assert sub_payment_id(3, 1) != sub_payment_id(3, 2)
        assert sub_payment_id(3, 1) != sub_payment_id(4, 1)
