"""Fee-market controller unit tests: repricing rule, hub selection, gossip.

The end-to-end behaviour (scenarios, engines, metrics) is covered by
``tests/sim/test_fee_invariants.py`` and the property suites; this
module pins the :class:`FeeMarketController` mechanics in isolation —
the multiplicative update, its clamps, the deterministic hub ranking,
the traffic-signal lifecycle, and the schedule integration that makes
a repricing tick count as ``channel_update`` gossip.
"""

from __future__ import annotations

import random

import pytest

from repro.network.dynamics import GossipSchedule
from repro.network.feemarket import FeeMarketController, assign_market_policies
from repro.network.fees import ChannelPolicy
from repro.network.graph import ChannelGraph


def _star(spokes: int = 4, balance: float = 100.0) -> ChannelGraph:
    graph = ChannelGraph()
    for i in range(spokes):
        graph.add_channel("hub", f"s{i}", balance, balance)
    return graph


def _price_all(graph: ChannelGraph, rate: float = 0.01) -> None:
    assign_market_policies(graph, random.Random(0), initial_rate=rate)


class TestAssignMarketPolicies:
    def test_prices_every_direction(self):
        graph = _star(4)
        priced = assign_market_policies(
            graph, random.Random(0), initial_rate=0.02
        )
        assert priced == 2 * 4
        assert graph.policy_aware
        for i in range(4):
            assert graph.channel_policy("hub", f"s{i}").fee_rate == 0.02
            assert graph.channel_policy(f"s{i}", "hub").fee_rate == 0.02

    def test_paper_mix_is_seed_deterministic(self):
        rates = []
        for _ in range(2):
            graph = _star(6)
            assign_market_policies(graph, random.Random(7), paper_mix=True)
            rates.append(
                [graph.channel_policy("hub", f"s{i}").fee_rate for i in range(6)]
            )
        assert rates[0] == rates[1]
        assert len(set(rates[0])) > 1  # a mix, not a uniform rate


class TestControllerUpdate:
    def test_idle_channels_decay_toward_min_rate(self):
        graph = _star()
        _price_all(graph, rate=0.01)
        controller = FeeMarketController(min_rate=0.001, decay=0.9)
        for _ in range(50):
            controller.update(graph, 0.0)
        for i in range(4):
            assert graph.channel_policy("hub", f"s{i}").fee_rate == 0.001

    def test_loaded_channels_surge_and_clamp(self):
        graph = _star()
        _price_all(graph, rate=0.01)
        controller = FeeMarketController(
            max_rate=0.10, sensitivity=4.0, decay=0.9
        )
        for _ in range(50):
            graph.note_traffic("hub", "s0", 150.0)  # utilization 0.75
            controller.update(graph, 0.0)
        assert graph.channel_policy("hub", "s0").fee_rate == 0.10
        # The idle spokes decayed to the floor meanwhile.
        assert graph.channel_policy("hub", "s1").fee_rate == 0.001

    def test_equilibrium_utilization_leaves_rate_fixed(self):
        graph = _star()
        _price_all(graph, rate=0.01)
        controller = FeeMarketController(sensitivity=4.0, decay=0.9)
        # factor = decay + sensitivity * u == 1  at  u = (1-decay)/sens.
        volume = (1 - 0.9) / 4.0 * graph.total_capacity("hub", "s0")
        graph.note_traffic("hub", "s0", volume)
        controller.update(graph, 0.0)
        assert graph.channel_policy("hub", "s0").fee_rate == pytest.approx(
            0.01
        )

    def test_update_clears_traffic_and_reports_change(self):
        graph = _star()
        _price_all(graph, rate=0.01)
        graph.note_traffic("hub", "s0", 50.0)
        controller = FeeMarketController()
        assert controller.update(graph, 0.0) is True
        assert graph.traffic == {}

    def test_update_returns_false_at_fixed_point(self):
        graph = _star()
        # Every direction already sits on the floor; idle decay is a
        # no-op and the controller must say so (no gossip pending).
        _price_all(graph, rate=0.001)
        controller = FeeMarketController(min_rate=0.001)
        assert controller.update(graph, 0.0) is False

    def test_controller_is_stateless_across_graphs(self):
        controller = FeeMarketController(decay=0.5)
        for _ in range(2):
            graph = _star()
            _price_all(graph, rate=0.01)
            controller.update(graph, 0.0)
            assert graph.channel_policy("hub", "s0").fee_rate == 0.005


class TestHubSelection:
    def _ranked_graph(self) -> ChannelGraph:
        graph = ChannelGraph()
        # degrees: big=3, mid=2, and leaves below.
        graph.add_channel("big", "mid", 50.0, 50.0)
        graph.add_channel("big", "x", 50.0, 50.0)
        graph.add_channel("big", "y", 50.0, 50.0)
        graph.add_channel("mid", "x", 50.0, 50.0)
        return graph

    def test_hubs_zero_prices_everyone(self):
        graph = self._ranked_graph()
        controller = FeeMarketController(hubs=0)
        assert set(controller.priced_nodes(graph)) == set(graph.nodes)

    def test_hubs_k_selects_top_degree_deterministically(self):
        graph = self._ranked_graph()
        assert FeeMarketController(hubs=1).priced_nodes(graph) == ["big"]
        assert FeeMarketController(hubs=2).priced_nodes(graph) == [
            "big",
            "mid",
        ]
        # Degree ties break on repr(node): "x" (degree 2) before "y".
        assert FeeMarketController(hubs=3).priced_nodes(graph) == [
            "big",
            "mid",
            "x",
        ]

    def test_only_hub_directions_reprice(self):
        graph = self._ranked_graph()
        _price_all(graph, rate=0.01)
        FeeMarketController(hubs=1, decay=0.5).update(graph, 0.0)
        assert graph.channel_policy("big", "mid").fee_rate == 0.005
        # Non-hub directions keep their rate (mid->big is mid's edge).
        assert graph.channel_policy("mid", "big").fee_rate == 0.01


class TestGossipIntegration:
    def test_repricing_tick_triggers_gossip(self):
        graph = _star()
        _price_all(graph, rate=0.01)
        graph.fee_controller = FeeMarketController(decay=0.9)
        ticks = []

        class Router:
            def on_topology_update(self):
                ticks.append(True)

        schedule = GossipSchedule(graph, events=[], gossip_period=100.0)
        schedule.register(Router())
        # Within the first period: no controller tick, no gossip.
        schedule.advance_to(50.0)
        assert ticks == []
        # Period elapsed, idle decay changes rates -> gossip round.
        schedule.advance_to(100.0)
        assert ticks == [True]
        assert graph.channel_policy("hub", "s0").fee_rate == pytest.approx(
            0.009
        )

    def test_fixed_point_tick_stays_silent(self):
        graph = _star()
        _price_all(graph, rate=0.001)  # already at the floor
        graph.fee_controller = FeeMarketController(min_rate=0.001)
        ticks = []

        class Router:
            def on_topology_update(self):
                ticks.append(True)

        schedule = GossipSchedule(graph, events=[], gossip_period=100.0)
        schedule.register(Router())
        schedule.advance_to(100.0)
        assert ticks == []

    def test_policy_version_bumps_on_reprice(self):
        graph = _star()
        _price_all(graph, rate=0.01)
        graph.fee_controller = FeeMarketController(decay=0.9)
        before = graph.policy_version
        schedule = GossipSchedule(graph, events=[], gossip_period=100.0)
        schedule.advance_to(100.0)
        assert graph.policy_version > before
