"""Aggregation over stored run records: mean, CI, per-metric pivots.

The paper reports each metric as the average of several seeded runs
(§4.1); this module turns the experiment store's per-run records
(:mod:`repro.eval.store`) into that shape — a per-metric **pivot**
(scenario × scheme → mean ± 95% confidence interval) plus markdown
renderings with fixed float precision so generated tables diff cleanly
and golden-file tests are deterministic.

The confidence interval uses the Student-t critical value for the
two-sided 95% level (the correct small-sample interval for 2–5 seeds;
no SciPy dependency — the critical values are tabulated below).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

#: Two-sided 95% Student-t critical values by degrees of freedom.
#: Above df=30 the normal approximation (1.960) is used.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical_95(df: int) -> float:
    """The two-sided 95% Student-t critical value for ``df`` degrees."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _T_95.get(df, 1.960)


@dataclass(frozen=True)
class MetricStats:
    """Mean and 95% CI half-width of one metric over ``n`` seeds."""

    n: int
    mean: float
    ci95: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricStats":
        """Stats over per-seed values; a single seed has a zero CI."""
        if not values:
            raise ValueError("no values to aggregate")
        n = len(values)
        mean = sum(values) / n
        if n == 1:
            return cls(n=n, mean=mean, ci95=0.0)
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        half_width = t_critical_95(n - 1) * math.sqrt(variance / n)
        return cls(n=n, mean=mean, ci95=half_width)


#: One pivot: ``{scenario: {scheme: MetricStats}}``.
Pivot = dict[str, dict[str, MetricStats]]


def pivot_metric(records: Iterable[Mapping], metric: str) -> Pivot:
    """Aggregate stored records into a scenario × scheme pivot.

    ``records`` are store dicts (see
    :func:`repro.eval.store.make_record`); runs of the same
    (scenario, scheme) cell family are averaged across their run
    indices.  Scenario and scheme orders follow first appearance so
    callers control ordering by pre-filtering/sorting the records.
    """
    values: dict[str, dict[str, list[float]]] = {}
    for record in records:
        scenario = record["scenario"]
        scheme = record["scheme"]
        values.setdefault(scenario, {}).setdefault(scheme, []).append(
            float(record["metrics"][metric])
        )
    return {
        scenario: {
            scheme: MetricStats.of(seed_values)
            for scheme, seed_values in by_scheme.items()
        }
        for scenario, by_scheme in values.items()
    }


def format_stats(
    stats: MetricStats,
    spec: str = ".6g",
    scale: float = 1.0,
) -> str:
    """``mean ± ci`` with fixed precision (``spec``), optionally scaled.

    ``scale`` converts units for display (e.g. ``100`` renders a ratio
    as a percentage); fixed format specs keep golden files stable.
    """
    mean = format(stats.mean * scale, spec)
    if stats.n == 1:
        return mean
    return f"{mean} ± {format(stats.ci95 * scale, spec)}"


def pivot_markdown(
    pivot: Pivot,
    scenarios: Sequence[str] | None = None,
    schemes: Sequence[str] | None = None,
    spec: str = ".6g",
    scale: float = 1.0,
) -> str:
    """One pivot as a GitHub markdown table: schemes down, scenarios across.

    Explicit ``scenarios``/``schemes`` fix row/column order (missing
    cells render as ``—``); by default both follow pivot insertion
    order.
    """
    if scenarios is None:
        scenarios = list(pivot)
    if schemes is None:
        seen: dict[str, None] = {}
        for by_scheme in pivot.values():
            for scheme in by_scheme:
                seen.setdefault(scheme)
        schemes = list(seen)
    lines = [
        "| scheme | " + " | ".join(scenarios) + " |",
        "| --- |" + " --- |" * len(scenarios),
    ]
    for scheme in schemes:
        cells = []
        for scenario in scenarios:
            stats = pivot.get(scenario, {}).get(scheme)
            cells.append(
                format_stats(stats, spec, scale) if stats else "—"
            )
        lines.append(f"| {scheme} | " + " | ".join(cells) + " |")
    return "\n".join(lines)
