"""Path algorithms on the structural channel topology.

All routers in this library (Flash and the baselines) plan on the hop-count
metric over the *structural* adjacency — balances are unknown until probed.
The functions here therefore take either a plain ``adjacency`` mapping
(``node -> list of neighbors``) or a prebuilt
:class:`~repro.network.compact.CompactTopology`, plus an optional
``edge_ok(u, v)`` predicate that path searches must respect (Flash uses it
to encode the residual capacity matrix of Algorithm 1).

Implemented from scratch:

* breadth-first shortest path (the subroutine of Algorithm 1);
* Yen's k-shortest loopless paths [36] (mice routing tables, §3.3);
* k edge-disjoint shortest paths (Spider's path choice [30]).

Passing a :class:`CompactTopology` routes every algorithm through the
integer fast path (flat ``parent``/``seen`` arrays, slot-id edge sets, a
candidate heap for Yen).  Mapping inputs keep the original dict-based BFS
for single searches, while the multi-search algorithms (Yen,
edge-disjoint) intern the mapping once up front and amortize the
conversion over their many inner BFS runs.  Both code paths intern nodes
in the same order, so below the bidirectional-search threshold
(:attr:`CompactTopology.BIDIRECTIONAL_MIN_NODES`) results are bit-for-bit
identical; at or above it the compact kernels may break ties between
equal-length paths differently (lengths, reachability, and determinism
are preserved).

Kernel *backend* dispatch also lives behind the snapshot, not here:
under ``backend="numpy"`` the full-sweep entry points
(:func:`bfs_distances`, :func:`bfs_tree_parents` — the routing-table
and embedding hot paths) run vectorized frontier batches, while the
single-pair searches that Yen's spur loop and the disjoint-path
selection issue stay on the serial kernels under every backend (the
measured win; see :mod:`repro.network.compact`).  Backends are
bit-identical — same paths, same dict orders — so callers never need
to know which one is active.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable, Mapping, Sequence

from repro.network.channel import NodeId
from repro.network.compact import CompactTopology

Adjacency = Mapping[NodeId, Sequence[NodeId]]
EdgePredicate = Callable[[NodeId, NodeId], bool]
Path = list[NodeId]


def path_edges(path: Sequence[NodeId]) -> list[tuple[NodeId, NodeId]]:
    """Directed edges traversed by ``path``."""
    return list(zip(path, path[1:]))


def is_simple_path(path: Sequence[NodeId]) -> bool:
    """True if ``path`` visits no node twice."""
    return len(set(path)) == len(path)


def key_repr(key: tuple[NodeId, ...]) -> tuple[str, ...]:
    """Deterministic tie-break key that tolerates mixed node-id types."""
    return tuple(repr(node) for node in key)


def _slot_ok_from_edge_ok(ct: CompactTopology, edge_ok: EdgePredicate | None):
    """Lift a node-level edge predicate to a slot predicate."""
    if edge_ok is None:
        return None
    nodes = ct.nodes
    tail = ct.slot_tail
    head = ct.indices

    def slot_ok(slot: int) -> bool:
        return edge_ok(nodes[tail[slot]], nodes[head[slot]])

    return slot_ok


# ---------------------------------------------------------------------- BFS


def bfs_shortest_path(
    adjacency: Adjacency,
    source: NodeId,
    target: NodeId,
    edge_ok: EdgePredicate | None = None,
    blocked_nodes: set[NodeId] | None = None,
) -> Path | None:
    """Fewest-hop path from ``source`` to ``target``, or ``None``.

    ``edge_ok(u, v)`` (if given) must return True for an edge to be usable;
    ``blocked_nodes`` are never entered (``source`` is exempt).
    """
    if isinstance(adjacency, CompactTopology):
        ct = adjacency
        src = ct.index_of(source)
        dst = ct.index_of(target)
        if src is None or dst is None:
            return None
        blocked = None
        if blocked_nodes:
            blocked = bytearray(ct.num_nodes)
            for node in blocked_nodes:
                i = ct.index_of(node)
                if i is not None:
                    blocked[i] = 1
        if edge_ok is None:
            if blocked is None:
                idx_path = ct.shortest_path_plain(src, dst)
            else:
                idx_path = ct.shortest_path_banned(src, dst, set(), blocked)
            return None if idx_path is None else ct.path_nodes(idx_path)
        found = ct.shortest_path_idx(
            src, dst, slot_ok=_slot_ok_from_edge_ok(ct, edge_ok), blocked=blocked
        )
        if found is None:
            return None
        return ct.path_nodes(found[0])

    if source == target:
        return [source]
    if source not in adjacency or target not in adjacency:
        return None
    blocked_set = blocked_nodes or set()
    parent: dict[NodeId, NodeId] = {source: source}
    queue: deque[NodeId] = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if v in parent or v in blocked_set:
                continue
            if edge_ok is not None and not edge_ok(u, v):
                continue
            parent[v] = u
            if v == target:
                return _reconstruct(parent, source, target)
            queue.append(v)
    return None


def _reconstruct(
    parent: Mapping[NodeId, NodeId], source: NodeId, target: NodeId
) -> Path:
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def bfs_distances(
    adjacency: Adjacency,
    source: NodeId,
    edge_ok: EdgePredicate | None = None,
) -> dict[NodeId, int]:
    """Hop distance from ``source`` to every reachable node."""
    if isinstance(adjacency, CompactTopology):
        ct = adjacency
        src = ct.index_of(source)
        if src is None:
            return {}
        dist_idx = ct.distances_idx(
            src, slot_ok=_slot_ok_from_edge_ok(ct, edge_ok)
        )
        nodes = ct.nodes
        return {nodes[i]: d for i, d in dist_idx.items()}

    dist = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency.get(u, ()):  # tolerate dangling references
            if v in dist:
                continue
            if edge_ok is not None and not edge_ok(u, v):
                continue
            dist[v] = dist[u] + 1
            queue.append(v)
    return dist


def bfs_tree_parents(
    adjacency: Adjacency, source: NodeId
) -> dict[NodeId, NodeId]:
    """Parent pointers of a BFS spanning tree rooted at ``source``.

    Used by the SpeedyMurmurs embedding and by landmark routing.  The root
    maps to itself.
    """
    if isinstance(adjacency, CompactTopology):
        ct = adjacency
        src = ct.index_of(source)
        if src is None:
            return {}
        nodes = ct.nodes
        return {
            nodes[child]: nodes[par]
            for child, par in ct.tree_parents_idx(src).items()
        }

    parent = {source: source}
    queue: deque[NodeId] = deque([source])
    while queue:
        u = queue.popleft()
        for v in adjacency.get(u, ()):
            if v not in parent:
                parent[v] = u
                queue.append(v)
    return parent


# ---------------------------------------------------------------------- Yen


def yen_k_shortest_paths(
    adjacency: Adjacency,
    source: NodeId,
    target: NodeId,
    k: int,
    edge_ok: EdgePredicate | None = None,
    first: Path | None = None,
) -> list[Path]:
    """Yen's algorithm [36]: up to ``k`` loopless fewest-hop paths.

    Paths are returned in non-decreasing hop-count order.  Ties between
    equal-length candidates are broken deterministically by node sequence
    (``repr`` order, robust to mixed node-id types), so results are
    reproducible across runs.

    ``first`` optionally supplies an already-known fewest-hop path from
    ``source`` to ``target`` (e.g. read off a cached BFS tree); the
    initial BFS is then skipped.  The caller is responsible for ``first``
    really being a shortest path under ``edge_ok``.
    """
    if k <= 0:
        return []
    if not isinstance(adjacency, CompactTopology) and (
        source not in adjacency or target not in adjacency
    ):
        # Match bfs_shortest_path on mapping inputs: an endpoint that is
        # only a dangling neighbor value, not a key, is unreachable.
        return []
    ct = CompactTopology.from_adjacency(adjacency)
    src = ct.index_of(source)
    dst = ct.index_of(target)
    if src is None or dst is None:
        return []
    base_ok = _slot_ok_from_edge_ok(ct, edge_ok)
    n = ct.num_nodes

    first_idx: list[int] | None = None
    if first is not None and first[0] == source and first[-1] == target:
        mapped = [ct.index_of(node) for node in first]
        if None not in mapped and ct.path_slots(mapped) is not None:
            first_idx = mapped  # type: ignore[assignment]
    if first_idx is None:
        if base_ok is None:
            first_idx = ct.shortest_path_plain(src, dst)
        else:
            found = ct.shortest_path_idx(src, dst, slot_ok=base_ok)
            first_idx = None if found is None else found[0]
    if first_idx is None:
        return []

    reprs = ct.repr_keys
    tail = ct.slot_tail
    heads = ct.indices
    # Accepted and candidate paths are tuples of dense indices; removed
    # spur edges are ``u * n + v`` integer codes, so the spur BFS does one
    # int-set membership test per edge instead of hashing node tuples.
    accepted: list[tuple[int, ...]] = [tuple(first_idx)]
    pushed: set[tuple[int, ...]] = {accepted[0]}
    heap: list[tuple[int, tuple[str, ...], tuple[int, ...]]] = []

    while len(accepted) < k:
        prev_idx = accepted[-1]
        for i in range(len(prev_idx) - 1):
            root = prev_idx[: i + 1]
            removed: set[int] = set()
            for other_idx in accepted:
                if len(other_idx) > i + 1 and other_idx[: i + 1] == root:
                    removed.add(other_idx[i] * n + other_idx[i + 1])
            blocked = bytearray(n)
            for node in root[:-1]:
                blocked[node] = 1

            if base_ok is None:
                spur = ct.shortest_path_banned(root[i], dst, removed, blocked)
            else:
                def spur_ok(
                    slot: int, _removed=removed, _base=base_ok
                ) -> bool:
                    return (
                        tail[slot] * n + heads[slot] not in _removed
                        and _base(slot)
                    )

                found = ct.shortest_path_idx(
                    root[i], dst, slot_ok=spur_ok, blocked=blocked
                )
                spur = None if found is None else found[0]
            if spur is None:
                continue
            candidate = root[:-1] + tuple(spur)
            if candidate in pushed:
                continue
            # ``blocked`` already guarantees loop-freedom: the spur path
            # cannot revisit any root node other than the spur node itself.
            pushed.add(candidate)
            heapq.heappush(
                heap,
                (
                    len(candidate),
                    tuple(reprs[j] for j in candidate),
                    candidate,
                ),
            )
        if not heap:
            break
        accepted.append(heapq.heappop(heap)[2])

    nodes = ct.nodes
    return [[nodes[j] for j in idx_path] for idx_path in accepted]


# --------------------------------------------------------------- fee-aware
#
# The cost-aware variants plan over BOLT #7 policies (base +
# proportional fee, htlc bounds) installed on a snapshot by
# ``ChannelGraph.compact()``.  Plain mapping inputs carry no policies,
# so on them the searches degenerate to fewest-hops at zero fee — the
# interning contract matches the hop-count functions above.


def _compact_for(adjacency: Adjacency) -> CompactTopology:
    if isinstance(adjacency, CompactTopology):
        return adjacency
    return CompactTopology.from_adjacency(adjacency)


def _blocked_bytes(
    ct: CompactTopology, blocked_nodes: set[NodeId] | None
) -> bytearray | None:
    if not blocked_nodes:
        return None
    blocked = bytearray(ct.num_nodes)
    for node in blocked_nodes:
        i = ct.index_of(node)
        if i is not None:
            blocked[i] = 1
    return blocked


def cheapest_path(
    adjacency: Adjacency,
    source: NodeId,
    target: NodeId,
    amount: float,
    blocked_nodes: set[NodeId] | None = None,
) -> tuple[Path, float] | None:
    """Cheapest feasible path delivering ``amount``, with its send total.

    Returns ``(path, total_sent)`` — ``total_sent - amount`` is the fee
    the sender pays — or ``None`` when no policy-feasible path exists.
    Cost ties break by hop count, then lexicographic dense-index path,
    identically under both kernel backends (see
    :meth:`CompactTopology.cheapest_path_idx`).

    Policies ride on :class:`CompactTopology` (installed by
    ``ChannelGraph.compact()``), not on adjacency dicts — pass a
    policy-installed snapshot, or the search degrades to the fee-free
    metric.
    """
    ct = _compact_for(adjacency)
    src = ct.index_of(source)
    dst = ct.index_of(target)
    if src is None or dst is None:
        return None
    found = ct.cheapest_path_idx(
        src, dst, amount, blocked=_blocked_bytes(ct, blocked_nodes)
    )
    if found is None:
        return None
    idx_path, total = found
    return ct.path_nodes(idx_path), total


def yen_cheapest_paths(
    adjacency: Adjacency,
    source: NodeId,
    target: NodeId,
    amount: float,
    k: int,
) -> list[tuple[Path, float]]:
    """Yen's algorithm on the fee metric: up to ``k`` cheapest paths.

    Returns ``(path, total_sent)`` pairs in non-decreasing send-total
    order (ties by hop count, then ``repr`` node sequence — the same
    deterministic order as :func:`yen_k_shortest_paths`).  Spur
    searches charge the spur node's outgoing edge
    (``free_source_edge=False``) because a spur node mid-path is an
    intermediate hop, so each spur is the true cheapest continuation;
    candidates are then re-priced over the full path, which also
    enforces prefix feasibility (a prefix whose htlc bounds reject the
    compounded amount drops the candidate — like classic Yen, the
    enumeration is exact on the spur metric and filters infeasible
    composites).
    """
    if k <= 0:
        return []
    if not isinstance(adjacency, CompactTopology) and (
        source not in adjacency or target not in adjacency
    ):
        return []
    ct = _compact_for(adjacency)
    src = ct.index_of(source)
    dst = ct.index_of(target)
    if src is None or dst is None:
        return []
    n = ct.num_nodes

    found = ct.cheapest_path_idx(src, dst, amount)
    if found is None:
        return []
    first_idx, first_total = found

    reprs = ct.repr_keys
    accepted: list[tuple[int, ...]] = [tuple(first_idx)]
    totals: list[float] = [first_total]
    pushed: set[tuple[int, ...]] = {accepted[0]}
    heap: list[
        tuple[float, int, tuple[str, ...], tuple[int, ...]]
    ] = []

    while len(accepted) < k:
        prev_idx = accepted[-1]
        for i in range(len(prev_idx) - 1):
            root = prev_idx[: i + 1]
            removed: set[int] = set()
            for other_idx in accepted:
                if len(other_idx) > i + 1 and other_idx[: i + 1] == root:
                    removed.add(other_idx[i] * n + other_idx[i + 1])
            blocked = bytearray(n)
            for node in root[:-1]:
                blocked[node] = 1
            spur = ct.cheapest_path_idx(
                root[i],
                dst,
                amount,
                banned=removed,
                blocked=blocked,
                free_source_edge=(i == 0),
            )
            if spur is None:
                continue
            candidate = root[:-1] + tuple(spur[0])
            if candidate in pushed:
                continue
            total = ct.path_cost_idx(candidate, amount)
            if total is None:
                continue
            pushed.add(candidate)
            heapq.heappush(
                heap,
                (
                    total,
                    len(candidate),
                    tuple(reprs[j] for j in candidate),
                    candidate,
                ),
            )
        if not heap:
            break
        total, _, _, candidate = heapq.heappop(heap)
        accepted.append(candidate)
        totals.append(total)

    nodes = ct.nodes
    return [
        ([nodes[j] for j in idx_path], total)
        for idx_path, total in zip(accepted, totals)
    ]


# ------------------------------------------------------------ edge-disjoint


def edge_disjoint_shortest_paths(
    adjacency: Adjacency,
    source: NodeId,
    target: NodeId,
    k: int,
    edge_ok: EdgePredicate | None = None,
) -> list[Path]:
    """Up to ``k`` mutually edge-disjoint fewest-hop paths (greedy).

    This is the path choice of Spider [30]: repeatedly take the current
    shortest path and remove its (directed) edges.  Greedy edge-disjoint
    selection is not guaranteed maximal but matches the behaviour the paper
    ascribes to Spider, including the Fig 5(b) pathology.
    """
    if k <= 0:
        return []
    if not isinstance(adjacency, CompactTopology) and (
        source not in adjacency or target not in adjacency
    ):
        # Same endpoint contract as bfs_shortest_path / Yen above.
        return []
    ct = CompactTopology.from_adjacency(adjacency)
    src = ct.index_of(source)
    dst = ct.index_of(target)
    if src is None or dst is None:
        return []
    base_ok = _slot_ok_from_edge_ok(ct, edge_ok)
    n = ct.num_nodes
    tail = ct.slot_tail
    heads = ct.indices
    # Used directed edges as ``u * n + v`` integer codes (see Yen above).
    used: set[int] = set()

    nodes = ct.nodes
    paths: list[Path] = []
    for _ in range(k):
        if base_ok is None:
            idx_path = ct.shortest_path_banned(src, dst, used)
        else:
            def disjoint_ok(slot: int) -> bool:
                return tail[slot] * n + heads[slot] not in used and base_ok(
                    slot
                )

            found = ct.shortest_path_idx(src, dst, slot_ok=disjoint_ok)
            idx_path = None if found is None else found[0]
        if idx_path is None:
            break
        paths.append([nodes[j] for j in idx_path])
        used.update(
            u * n + v for u, v in zip(idx_path, idx_path[1:])
        )
    return paths
