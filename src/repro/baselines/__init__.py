"""Baseline routing schemes the paper compares against (§4.1)."""

from repro.baselines.landmark import LandmarkRouter, splice_paths
from repro.baselines.shortest_path import ShortestPathRouter
from repro.baselines.speedymurmurs import (
    SPEEDYMURMURS_LANDMARKS,
    SpeedyMurmursRouter,
    tree_coordinates,
    tree_distance,
)
from repro.baselines.spider import SPIDER_NUM_PATHS, SpiderRouter, waterfill

__all__ = [
    "LandmarkRouter",
    "SPEEDYMURMURS_LANDMARKS",
    "SPIDER_NUM_PATHS",
    "ShortestPathRouter",
    "SpeedyMurmursRouter",
    "SpiderRouter",
    "splice_paths",
    "tree_coordinates",
    "tree_distance",
    "waterfill",
]
