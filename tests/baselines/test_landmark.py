"""Tests for the landmark (SilentWhispers-flavored) baseline."""

import pytest

from repro.baselines.landmark import LandmarkRouter, splice_paths
from repro.network.view import NetworkView
from repro.traces.workload import Transaction


def txn(amount, sender=0, receiver=8, txid=0):
    return Transaction(txid=txid, sender=sender, receiver=receiver, amount=amount)


class TestSplice:
    def test_simple_concatenation(self):
        assert splice_paths([0, 1, 2], [2, 3]) == [0, 1, 2, 3]

    def test_loop_removed(self):
        # Up to the landmark and straight back down through the same node.
        assert splice_paths([0, 1, 2], [2, 1, 5]) == [0, 1, 5]

    def test_full_backtrack(self):
        assert splice_paths([0, 1, 2], [2, 1, 0, 7]) == [0, 7]

    def test_mismatched_endpoints_rejected(self):
        with pytest.raises(ValueError):
            splice_paths([0, 1], [2, 3])


class TestLandmarkRouter:
    def test_delivers(self, grid_graph):
        router = LandmarkRouter(NetworkView(grid_graph))
        outcome = router.route(txn(9.0))
        assert outcome.success

    def test_paths_are_walks_through_graph(self, grid_graph):
        adjacency = grid_graph.adjacency()
        router = LandmarkRouter(NetworkView(grid_graph))
        outcome = router.route(txn(9.0))
        for path, _ in outcome.transfers:
            for u, v in zip(path, path[1:]):
                assert v in adjacency[u]

    def test_no_probing(self, grid_graph):
        view = NetworkView(grid_graph)
        router = LandmarkRouter(view)
        router.route(txn(9.0))
        assert view.counters.probe_messages == 0

    def test_failure_atomic(self, grid_graph):
        view = NetworkView(grid_graph)
        router = LandmarkRouter(view)
        funds = grid_graph.network_funds()
        assert not router.route(txn(1e6)).success
        assert grid_graph.network_funds() == pytest.approx(funds)

    def test_unreachable_fails(self, grid_graph):
        grid_graph.add_node(99)
        router = LandmarkRouter(NetworkView(grid_graph))
        assert not router.route(txn(1.0, receiver=99)).success

    def test_validation(self, grid_graph):
        with pytest.raises(ValueError):
            LandmarkRouter(NetworkView(grid_graph), num_landmarks=0)
