"""Streaming trace-scale benchmark: a ``lightning-day`` slice in
bounded memory.

Measures the two claims the streaming workload path makes:

* **throughput** — the concurrent engine sustains >= 10k transactions/s
  on the shortest-path scheme when fed from a :class:`WorkloadStream`
  (retries off, so the number tracks the engine + routing machinery,
  not the contention profile of a particular load setting);
* **bounded residency** — peak *live* ``Transaction`` count stays
  O(lookahead window), not O(n): the stream is instrumented with a
  ``weakref.WeakSet`` so every transaction still reachable (pre-fed in
  the queue or held in flight) is counted at the moment each new one is
  yielded.

Writes machine-readable ``BENCH_streaming.json`` at the repo root so
future PRs can track throughput/residency with
``python benchmarks/compare_bench.py``.

Set ``BENCH_SMOKE=1`` to run a scaled-down version (CI smoke).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import random
import time
import weakref

from _common import save_result

import repro.scenarios  # populates the catalog (lightning-day)
from repro.scenarios.registry import get_scenario
from repro.sim.concurrent import ConcurrencyConfig, run_concurrent_simulation
from repro.sim.factories import shortest_path_factory
from repro.traces.workload import WorkloadStream

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

N_TRANSACTIONS = 30_000 if SMOKE else 200_000
LOOKAHEAD = 256
#: Retries off: every payment costs exactly one routing attempt, so the
#: throughput number is the engine's, not the retry policy's.
ENGINE_PARAMS = {
    "load": 1.0,
    "hop_latency": 0.05,
    "timeout": 5.0,
    "max_retries": 0,
}
#: Machine-independent floors with slack under the measured ~12k txn/s
#: (full scale, one core); the smoke floor absorbs shared-runner noise.
MIN_TXN_PER_S = 4_000.0 if SMOKE else 10_000.0

BENCH_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_streaming.json"
)


class _ResidencyProbe:
    """Counts live (still-referenced) transactions as the stream flows.

    ``WeakSet`` membership drops the moment the engine's last reference
    dies (CPython refcounting — transactions sit in no reference
    cycles), so ``len(live)`` at each yield is the true residency.
    """

    def __init__(self) -> None:
        self.live: weakref.WeakSet = weakref.WeakSet()
        self.peak = 0
        self.yielded = 0

    def wrap(self, stream: WorkloadStream) -> WorkloadStream:
        def source():
            for transaction in iter(stream):
                self.live.add(transaction)
                size = len(self.live)
                if size > self.peak:
                    self.peak = size
                self.yielded += 1
                yield transaction

        return WorkloadStream(source, length=stream.length)


def test_bench_streaming():
    scenario = get_scenario("lightning-day")
    factory = scenario.factory(
        workload_overrides={"transactions": N_TRANSACTIONS}
    )
    graph, stream = factory(random.Random(20_260_808))
    assert isinstance(stream, WorkloadStream) and stream.restartable
    config = ConcurrencyConfig.from_params(ENGINE_PARAMS)

    probe = _ResidencyProbe()
    probed = probe.wrap(stream)
    start = time.perf_counter()
    result = run_concurrent_simulation(
        graph,
        shortest_path_factory(),
        probed,
        rng=random.Random(42),
        config=config,
        lookahead=LOOKAHEAD,
    )
    wall_s = time.perf_counter() - start
    txn_per_s = N_TRANSACTIONS / wall_s if wall_s else float("inf")

    report = {
        "benchmark": "streaming_day",
        "smoke": SMOKE,
        "scenario": "lightning-day",
        "topology": {
            "source": scenario.topology,
            "nodes": graph.num_nodes(),
            "channels": graph.num_channels(),
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "engine": dict(ENGINE_PARAMS),
        "throughput": {
            "scheme": "Shortest Path",
            "transactions": N_TRANSACTIONS,
            "wall_s": round(wall_s, 3),
            "transactions_per_second": round(txn_per_s, 1),
            "success_ratio": round(result.success_ratio, 4),
        },
        "residency": {
            "lookahead": LOOKAHEAD,
            "peak_live_transactions": probe.peak,
            "transactions": probe.yielded,
            "peak_over_lookahead": round(probe.peak / LOOKAHEAD, 2),
        },
    }
    from repro.eval.store import CANONICAL_DIGITS, canonicalize

    BENCH_JSON.write_text(
        json.dumps(
            canonicalize(report, CANONICAL_DIGITS),
            indent=2,
            sort_keys=True,
            allow_nan=False,
        )
        + "\n"
    )

    body = "\n".join(
        [
            f"scenario: lightning-day slice, n={N_TRANSACTIONS}"
            + (" [SMOKE]" if SMOKE else ""),
            f"topology: {scenario.topology} nodes={graph.num_nodes()} "
            f"channels={graph.num_channels()}",
            f"throughput: {N_TRANSACTIONS} txns in {wall_s:.2f} s "
            f"({txn_per_s:,.0f} txn/s, shortest-path, retries off)",
            f"residency: peak {probe.peak} live transactions "
            f"(lookahead {LOOKAHEAD}, {probe.peak / LOOKAHEAD:.2f}x window; "
            f"stream length {probe.yielded})",
        ]
    )
    save_result("streaming", "Streaming lightning-day benchmark", body)

    # Every transaction must have flowed through the probe exactly once.
    assert probe.yielded == N_TRANSACTIONS
    assert result.transactions == N_TRANSACTIONS
    # The bounded-memory contract: peak residency tracks the lookahead
    # window (pre-fed payments + the in-flight holds the load profile
    # admits), never the stream length.
    assert probe.peak <= 2 * LOOKAHEAD, report["residency"]
    assert probe.peak < N_TRANSACTIONS / 20, report["residency"]
    # The throughput contract of the single-pass path.
    assert txn_per_s >= MIN_TXN_PER_S, report["throughput"]
