"""Schema-validated topology snapshot loaders (CSV and JSON).

Real PCN experiments start from crawled snapshots — Lightning gossip
dumps exported as ``src,dst,capacity`` CSVs, Ripple credit-network crawls
with per-direction balances.  These loaders turn such files into a
:class:`~repro.network.graph.ChannelGraph`, validating every row; node
ids are canonicalized at load and interned onto the compact CSR fast
path (:meth:`ChannelGraph.compact`) on first route, so a loaded
topology routes exactly as fast as a generated one.

Supported schemas
-----------------
CSV (header required, extra columns ignored):

* **Lightning-style**: ``src,dst,capacity`` — one row per channel, total
  capacity split evenly across directions (the paper's preprocessing for
  balance-unknown crawls).
* **Ripple-style**: ``src,dst,balance_src,balance_dst`` — per-direction
  credit balances, kept as given.

JSON: an object ``{"format": "repro-snapshot-v1", "channels": [...]}``
where each channel object carries ``src``/``dst`` plus either
``capacity`` or ``balance_src``/``balance_dst`` (the two CSV schemas,
row by row).

Node ids may mix integers and numeric strings across rows (crawls often
do); digit-only ids are canonicalized to ``int`` so ``7`` and ``"7"``
name the same node.  Duplicate channels are an error by default —
``on_duplicate="merge"`` sums their funds, ``"skip"`` keeps the first.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.network.channel import NodeId
from repro.network.graph import ChannelGraph
from repro.scenarios.registry import ScenarioError

__all__ = [
    "SnapshotError",
    "load_snapshot",
    "load_snapshot_csv",
    "load_snapshot_json",
]

_DUPLICATE_POLICIES = ("error", "merge", "skip")


class SnapshotError(ScenarioError):
    """A snapshot file failed schema validation."""


def _normalize_node_id(raw: object, where: str) -> NodeId:
    """Canonicalize one node id: digit strings become ints.

    Crawled snapshots routinely mix ``7`` and ``"7"`` (JSON re-exports,
    spreadsheet round-trips); canonicalizing keeps them one node instead
    of two disconnected ones.
    """
    if isinstance(raw, bool) or raw is None:
        raise SnapshotError(f"{where}: invalid node id {raw!r}")
    if isinstance(raw, int):
        return raw
    if isinstance(raw, str):
        text = raw.strip()
        if not text:
            raise SnapshotError(f"{where}: empty node id")
        stripped = text[1:] if text[0] in "+-" else text
        # isascii() guards against Unicode digits (e.g. superscripts)
        # that isdigit() accepts but int() rejects.
        if stripped.isascii() and stripped.isdigit():
            return int(text)
        return text
    raise SnapshotError(f"{where}: invalid node id {raw!r}")


def _parse_balance(raw: object, column: str, where: str) -> float:
    try:
        value = float(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise SnapshotError(
            f"{where}: {column} must be a number, got {raw!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise SnapshotError(f"{where}: {column} must be finite, got {raw!r}")
    if value < 0:
        raise SnapshotError(f"{where}: negative {column} {value!r}")
    return value


class _SnapshotBuilder:
    """Accumulates validated channel rows, applying the duplicate policy."""

    def __init__(self, on_duplicate: str, source: str) -> None:
        if on_duplicate not in _DUPLICATE_POLICIES:
            raise SnapshotError(
                f"on_duplicate must be one of {_DUPLICATE_POLICIES}, "
                f"got {on_duplicate!r}"
            )
        self._on_duplicate = on_duplicate
        self._source = source
        #: canonical (min, max) key -> [a, b, balance_a, balance_b]
        self._channels: dict[tuple, list] = {}

    def add(
        self, a: NodeId, b: NodeId, balance_a: float, balance_b: float, where: str
    ) -> None:
        if a == b:
            raise SnapshotError(f"{where}: self-channel at node {a!r}")
        key = (min((a, b), key=repr), max((a, b), key=repr))
        existing = self._channels.get(key)
        if existing is None:
            self._channels[key] = [a, b, balance_a, balance_b]
            return
        if self._on_duplicate == "error":
            raise SnapshotError(f"{where}: duplicate channel {a!r}<->{b!r}")
        if self._on_duplicate == "merge":
            if existing[0] == a:
                existing[2] += balance_a
                existing[3] += balance_b
            else:
                existing[2] += balance_b
                existing[3] += balance_a
        # "skip": keep the first occurrence.

    def graph(self) -> ChannelGraph:
        if not self._channels:
            raise SnapshotError(f"{self._source}: snapshot has no channels")
        result = ChannelGraph()
        for a, b, balance_a, balance_b in self._channels.values():
            result.add_channel(a, b, balance_a, balance_b)
        return result


def _row_channel(
    row: dict, has_capacity: bool, where: str
) -> tuple[NodeId, NodeId, float, float]:
    src = _normalize_node_id(row.get("src"), where)
    dst = _normalize_node_id(row.get("dst"), where)
    if has_capacity:
        half = _parse_balance(row.get("capacity"), "capacity", where) / 2.0
        return src, dst, half, half
    return (
        src,
        dst,
        _parse_balance(row.get("balance_src"), "balance_src", where),
        _parse_balance(row.get("balance_dst"), "balance_dst", where),
    )


def _schema_of(columns, where: str) -> bool:
    """``True`` for the capacity schema, ``False`` for per-direction."""
    present = set(columns or ())
    if not {"src", "dst"} <= present:
        raise SnapshotError(
            f"{where}: header must name 'src' and 'dst' columns, "
            f"got {sorted(present) or 'nothing'}"
        )
    if "capacity" in present:
        return True
    if {"balance_src", "balance_dst"} <= present:
        return False
    raise SnapshotError(
        f"{where}: need either a 'capacity' column or both "
        "'balance_src' and 'balance_dst'"
    )


def load_snapshot_csv(
    path: str | Path, on_duplicate: str = "error"
) -> ChannelGraph:
    """Load a CSV topology snapshot (see module docstring for schemas).

    The header row picks the schema; every data row is validated (node
    ids, numeric/finite/non-negative funds, no self-channels).
    """
    path = Path(path)
    builder = _SnapshotBuilder(on_duplicate, path.name)
    try:
        with open(path, newline="", encoding="utf-8") as handle:
            reader = csv.DictReader(handle)
            has_capacity = _schema_of(reader.fieldnames, path.name)
            for line_number, row in enumerate(reader, start=2):
                where = f"{path.name}:{line_number}"
                if None in row:
                    raise SnapshotError(
                        f"{where}: more cells than header columns"
                    )
                builder.add(*_row_channel(row, has_capacity, where), where)
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot read snapshot ({exc})") from exc
    return builder.graph()


def load_snapshot_json(
    path: str | Path, on_duplicate: str = "error"
) -> ChannelGraph:
    """Load a JSON topology snapshot (``repro-snapshot-v1``).

    Validates the envelope (``format`` tag, ``channels`` list) and each
    channel object with the same rules as the CSV loader; channels may
    carry ``capacity`` or ``balance_src``/``balance_dst`` per object.
    """
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot read snapshot ({exc})") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{path.name}: invalid JSON ({exc})") from exc
    if not isinstance(document, dict):
        raise SnapshotError(f"{path.name}: top level must be an object")
    if document.get("format") != "repro-snapshot-v1":
        raise SnapshotError(
            f"{path.name}: expected format 'repro-snapshot-v1', "
            f"got {document.get('format')!r}"
        )
    channels = document.get("channels")
    if not isinstance(channels, list):
        raise SnapshotError(f"{path.name}: 'channels' must be a list")
    builder = _SnapshotBuilder(on_duplicate, path.name)
    for position, entry in enumerate(channels):
        where = f"{path.name}:channels[{position}]"
        if not isinstance(entry, dict):
            raise SnapshotError(f"{where}: channel must be an object")
        has_capacity = "capacity" in entry
        if not has_capacity and not (
            "balance_src" in entry and "balance_dst" in entry
        ):
            raise SnapshotError(
                f"{where}: need 'capacity' or 'balance_src'/'balance_dst'"
            )
        builder.add(*_row_channel(entry, has_capacity, where), where)
    return builder.graph()


def load_snapshot(path: str | Path, on_duplicate: str = "error") -> ChannelGraph:
    """Dispatch on file extension: ``.csv`` or ``.json``."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return load_snapshot_csv(path, on_duplicate=on_duplicate)
    if path.suffix.lower() == ".json":
        return load_snapshot_json(path, on_duplicate=on_duplicate)
    raise SnapshotError(
        f"{path.name}: unsupported snapshot extension {path.suffix!r} "
        "(expected .csv or .json)"
    )
