"""Tests for the mice routing table."""

from repro.core.routing_table import RoutingTable


class TestLookup:
    def test_first_lookup_computes_m_paths(self, grid_graph):
        table = RoutingTable(m=4)
        entry = table.lookup(0, 8, grid_graph.adjacency())
        assert len(entry.paths) == 4
        assert all(p[0] == 0 and p[-1] == 8 for p in entry.paths)

    def test_recurring_lookup_is_cached(self, grid_graph):
        table = RoutingTable(m=4)
        adjacency = grid_graph.adjacency()
        first = table.lookup(0, 8, adjacency)
        second = table.lookup(0, 8, adjacency)
        assert first is second
        assert second.hits == 1
        assert table.hit_ratio == 0.5

    def test_disconnected_receiver_empty_entry(self, grid_graph):
        grid_graph.add_node(99)
        table = RoutingTable(m=4)
        entry = table.lookup(0, 99, grid_graph.adjacency())
        assert entry.paths == []

    def test_per_pair_entries(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency)
        table.lookup(8, 0, adjacency)
        assert len(table) == 2


class TestReplacement:
    def test_dead_path_replaced_with_next_shortest(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        entry = table.lookup(0, 8, adjacency)
        dead = entry.paths[0]
        replacement = table.replace_path(0, 8, dead, adjacency)
        assert replacement is not None
        assert replacement not in (dead,)
        assert dead not in entry.paths
        assert len(entry.paths) == 2

    def test_replacement_differs_from_existing(self, grid_graph):
        table = RoutingTable(m=3)
        adjacency = grid_graph.adjacency()
        entry = table.lookup(0, 8, adjacency)
        replacement = table.replace_path(0, 8, entry.paths[1], adjacency)
        assert replacement is not None
        assert len({tuple(p) for p in entry.paths}) == 3

    def test_exhausted_topology_drops_path(self, line_graph):
        table = RoutingTable(m=1)
        adjacency = line_graph.adjacency()
        entry = table.lookup(0, 3, adjacency)
        # A line has exactly one simple path: no replacement exists.
        assert table.replace_path(0, 3, entry.paths[0], adjacency) is None
        assert entry.paths == []

    def test_replace_unknown_pair_is_noop(self, grid_graph):
        table = RoutingTable(m=2)
        assert table.replace_path(0, 8, [0, 1, 8], grid_graph.adjacency()) is None


class TestMaintenance:
    def test_refresh_recomputes_entries(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        entry = table.lookup(0, 8, adjacency)
        # Channel 0-1 disappears; refresh must drop paths through it.
        grid_graph.remove_channel(0, 1)
        table.refresh(grid_graph.adjacency())
        assert all(path[1] == 3 for path in entry.paths)

    def test_ttl_eviction(self, grid_graph):
        table = RoutingTable(m=2, entry_ttl=100.0)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency, now=0.0)
        table.lookup(0, 5, adjacency, now=150.0)
        assert table.evict_stale(now=200.0) == 1
        assert (0, 8) not in table
        assert (0, 5) in table

    def test_infinite_ttl_never_evicts(self, grid_graph):
        table = RoutingTable(m=2)
        table.lookup(0, 8, grid_graph.adjacency(), now=0.0)
        assert table.evict_stale(now=1e12) == 0

    def test_max_entries_lru(self, grid_graph):
        table = RoutingTable(m=1, max_entries=2)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency, now=0.0)
        table.lookup(0, 5, adjacency, now=1.0)
        table.lookup(0, 7, adjacency, now=2.0)
        assert len(table) == 2
        assert (0, 8) not in table


class TestStructuralBfsLayer:
    """The per-source BFS tree shared across (src, dst) pairs."""

    def test_tree_shared_across_receivers(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency)
        table.lookup(0, 5, adjacency)
        table.lookup(0, 7, adjacency)
        # One tree for source 0, reused by every receiver.
        assert list(table._source_layers) == [0]

    def test_first_path_matches_bfs(self, grid_graph):
        from repro.network.paths import bfs_shortest_path

        table = RoutingTable(m=4)
        adjacency = grid_graph.adjacency()
        for receiver in (5, 7, 8):
            entry = table.lookup(0, receiver, adjacency)
            assert entry.paths[0] == bfs_shortest_path(adjacency, 0, receiver)

    def test_refresh_invalidates_trees(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency)
        grid_graph.remove_channel(0, 1)
        updated = grid_graph.adjacency()
        table.refresh(updated)
        entry = table.lookup(0, 8, updated)
        assert all(path[1] == 3 for path in entry.paths)

    def test_new_topology_object_recomputes_tree(self, grid_graph):
        table = RoutingTable(m=1)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency)
        grid_graph.remove_channel(0, 1)
        # A *fresh* topology object (new token) must not reuse the tree.
        entry = table.lookup(0, 5, grid_graph.adjacency())
        assert all(path[1] == 3 for path in entry.paths)

    def test_compact_topology_token_uses_version(self, grid_graph):
        table = RoutingTable(m=2)
        compact = grid_graph.compact()
        table.lookup(0, 8, compact)
        cached_topology, token, _ = table._source_layers[0]
        assert cached_topology is compact
        assert token == (compact.version, compact.num_slots)

    def test_lru_bound_interplay_with_structural_cache(self, grid_graph):
        # Entry eviction (max_entries) must not corrupt the shared tree:
        # a re-looked-up evicted pair recomputes the same paths.
        table = RoutingTable(m=2, max_entries=2)
        adjacency = grid_graph.adjacency()
        original = list(table.lookup(0, 8, adjacency, now=0.0).paths)
        table.lookup(0, 5, adjacency, now=1.0)
        table.lookup(0, 7, adjacency, now=2.0)  # evicts (0, 8)
        assert (0, 8) not in table
        recomputed = table.lookup(0, 8, adjacency, now=3.0)
        assert recomputed.paths == original
        assert recomputed.misses == 1
        assert len(table) == 2

    def test_replacement_consistent_with_seeded_yen(self, grid_graph):
        from repro.network.paths import yen_k_shortest_paths

        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        entry = table.lookup(0, 8, adjacency)
        dead = entry.paths[0]
        replacement = table.replace_path(0, 8, dead, adjacency)
        ranked = yen_k_shortest_paths(adjacency, 0, 8, 3)
        assert replacement == ranked[2]
