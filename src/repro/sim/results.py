"""Result presentation: ASCII tables and series, the shape of the paper's
figures.

``format_table`` renders rows the way the benchmark harness prints them;
``format_series`` renders one line per scheme for a swept parameter, i.e.
one paper line-plot as text.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_number(value: float) -> str:
    """Compact human formatting: 1234567 -> '1.235e6', 0.91 -> '0.910'."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{value:.3e}"
    if magnitude >= 100:
        return f"{value:,.1f}"
    return f"{value:.3f}"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A fixed-width ASCII table with a separator under the header."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    value_label: str,
) -> str:
    """One paper line-plot as a table: x values as columns, one scheme/row."""
    headers = [f"{value_label} \\ {x_label}"] + [str(x) for x in x_values]
    rows = []
    for scheme, values in series.items():
        rows.append([scheme] + [format_number(v) for v in values])
    return format_table(headers, rows)
