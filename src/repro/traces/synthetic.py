"""Synthetic workload generators beyond the paper's calibrated traces.

:mod:`repro.traces.generators` reproduces the two workloads the paper
evaluates on (§4.1).  This module adds the stress shapes a production
router meets in the wild, each exposed as a named workload in the
:mod:`repro.scenarios` catalog:

* :func:`generate_bursty_workload` — compound-Poisson bursts: payment
  *sessions* arrive as a Poisson process, each session fires a geometric
  number of rapid payments on one (sender, receiver) pair.  Stresses the
  routing table's recurrence exploitation and channel depletion on a
  single path.
* :func:`generate_diurnal_workload` — a sinusoidal daily rate profile
  (thinning of a homogeneous Poisson process), so the network alternates
  between quiet recovery windows and rush-hour contention.
* :func:`generate_hotspot_workload` — a configurable share of all
  payments drains into a handful of hotspot receivers (merchants or
  exchanges), creating the asymmetric many-to-one congestion that
  single-path routing handles worst.
* :func:`generate_mixed_workload` — an explicit mice–elephant mixture
  with every knob exposed (mice fraction, medians, log-sigmas), for
  sweeping the elephant share instead of inheriting the trace-calibrated
  10%.

All generators take an explicit :class:`random.Random` and return a
:class:`~repro.traces.workload.Workload`, so they compose with every
scenario/runner entry point exactly like the calibrated generators.
"""

from __future__ import annotations

import heapq
import math
import random
from collections.abc import Iterator, Sequence
from itertools import accumulate

from repro.network.channel import NodeId
from repro.traces.distributions import (
    LogNormalSpec,
    PaymentSizeDistribution,
    ripple_size_distribution,
)
from repro.traces.generators import SECONDS_PER_DAY
from repro.traces.recurrence import RecurrentPairSampler
from repro.traces.workload import Transaction, Workload


def _default_pair_sampler(
    rng: random.Random, nodes: Sequence[NodeId]
) -> RecurrentPairSampler:
    """The §4-style spread-out recurrent pair process (see generators.py)."""
    return RecurrentPairSampler(
        nodes,
        rng,
        active_sender_fraction=0.25,
        sender_exponent=0.8,
        contacts_per_sender=8,
        contact_exponent=1.2,
        repeat_probability=0.85,
    )


def stream_bursty_workload(
    rng: random.Random,
    nodes: Sequence[NodeId],
    n_transactions: int,
    sizes: PaymentSizeDistribution | None = None,
    bursts_per_day: float = 400.0,
    mean_burst_size: float = 5.0,
    intra_burst_gap: float = 2.0,
    pair_sampler: RecurrentPairSampler | None = None,
) -> Iterator[Transaction]:
    """Generator twin of :func:`generate_bursty_workload`.

    A long burst can overlap later sessions' starts, so payments cannot
    be emitted in raw generation order.  Instead of materializing and
    sorting the whole trace, pending payments sit in a small heap keyed
    ``(time, generation order)``: once a session starting at ``now`` has
    been generated, every heaped payment with ``time <= now`` is safe to
    emit (all future payments occur strictly after ``now``).  The heap
    therefore holds only the payments of sessions still overlapping the
    current session start — O(concurrent sessions × burst length), not
    O(n) — and the emitted order (with txids renumbered in emission
    order) is identical to the list generator's stable sort.
    """
    if n_transactions < 0:
        raise ValueError("n_transactions must be non-negative")
    if bursts_per_day <= 0 or mean_burst_size < 1 or intra_burst_gap <= 0:
        raise ValueError(
            "bursts_per_day and intra_burst_gap must be positive, "
            "mean_burst_size >= 1"
        )
    distribution = sizes or ripple_size_distribution()
    sampler = pair_sampler or _default_pair_sampler(rng, nodes)
    continue_probability = 1.0 - 1.0 / mean_burst_size
    mean_session_gap = SECONDS_PER_DAY / bursts_per_day

    def emit() -> Iterator[Transaction]:
        heap: list[tuple[float, int, NodeId, NodeId, float]] = []
        sequence = 0
        generated = 0
        txid = 0
        now = 0.0
        while generated < n_transactions:
            now += rng.expovariate(1.0 / mean_session_gap)
            sender, receiver = sampler.sample_pair()
            burst_time = now
            while generated < n_transactions:
                heapq.heappush(
                    heap,
                    (
                        burst_time,
                        sequence,
                        sender,
                        receiver,
                        distribution.sample(rng),
                    ),
                )
                sequence += 1
                generated += 1
                if rng.random() >= continue_probability:
                    break
                burst_time += rng.expovariate(1.0 / intra_burst_gap)
            while heap and heap[0][0] <= now:
                time, _, pay_sender, pay_receiver, amount = heapq.heappop(heap)
                yield Transaction(
                    txid=txid,
                    sender=pay_sender,
                    receiver=pay_receiver,
                    amount=amount,
                    time=time,
                )
                txid += 1
        while heap:
            time, _, pay_sender, pay_receiver, amount = heapq.heappop(heap)
            yield Transaction(
                txid=txid,
                sender=pay_sender,
                receiver=pay_receiver,
                amount=amount,
                time=time,
            )
            txid += 1

    return emit()


def generate_bursty_workload(
    rng: random.Random,
    nodes: Sequence[NodeId],
    n_transactions: int,
    sizes: PaymentSizeDistribution | None = None,
    bursts_per_day: float = 400.0,
    mean_burst_size: float = 5.0,
    intra_burst_gap: float = 2.0,
    pair_sampler: RecurrentPairSampler | None = None,
) -> Workload:
    """Compound-Poisson burst workload.

    Sessions arrive with exponential gaps (``bursts_per_day`` rate); each
    session picks one (sender, receiver) pair and fires a geometric
    number of payments (mean ``mean_burst_size``) spaced by exponential
    ``intra_burst_gap``-second gaps.  Generation stops once
    ``n_transactions`` payments exist, so the last burst may be cut
    short.  A long burst can overlap the next session's start; the
    result is emitted in time order (and re-numbered) so the
    trace-driven simulator always sees a chronological stream.
    """
    return Workload(
        list(
            stream_bursty_workload(
                rng,
                nodes,
                n_transactions,
                sizes,
                bursts_per_day=bursts_per_day,
                mean_burst_size=mean_burst_size,
                intra_burst_gap=intra_burst_gap,
                pair_sampler=pair_sampler,
            )
        )
    )


def stream_diurnal_workload(
    rng: random.Random,
    nodes: Sequence[NodeId],
    n_transactions: int,
    sizes: PaymentSizeDistribution | None = None,
    transactions_per_day: float = 2_000.0,
    peak_to_trough: float = 4.0,
    peak_hour: float = 14.0,
    pair_sampler: RecurrentPairSampler | None = None,
) -> Iterator[Transaction]:
    """Generator twin of :func:`generate_diurnal_workload` — one
    transaction at a time, identical RNG draw order, O(1) memory."""
    if n_transactions < 0:
        raise ValueError("n_transactions must be non-negative")
    if transactions_per_day <= 0:
        raise ValueError("transactions_per_day must be positive")
    if peak_to_trough < 1.0:
        raise ValueError(f"peak_to_trough must be >= 1, got {peak_to_trough}")
    distribution = sizes or ripple_size_distribution()
    sampler = pair_sampler or _default_pair_sampler(rng, nodes)
    # rate(t) = base * (1 + a*cos(...)), a in [0, 1): ratio (1+a)/(1-a).
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    base_rate = transactions_per_day / SECONDS_PER_DAY
    peak_rate = base_rate * (1.0 + amplitude)
    phase = 2.0 * math.pi * peak_hour / 24.0

    def emit() -> Iterator[Transaction]:
        now = 0.0
        txid = 0
        while txid < n_transactions:
            now += rng.expovariate(peak_rate)
            angle = 2.0 * math.pi * (now / SECONDS_PER_DAY) - phase
            rate = base_rate * (1.0 + amplitude * math.cos(angle))
            if rng.random() * peak_rate > rate:
                continue  # thinned away
            sender, receiver = sampler.sample_pair()
            yield Transaction(
                txid=txid,
                sender=sender,
                receiver=receiver,
                amount=distribution.sample(rng),
                time=now,
            )
            txid += 1

    return emit()


def generate_diurnal_workload(
    rng: random.Random,
    nodes: Sequence[NodeId],
    n_transactions: int,
    sizes: PaymentSizeDistribution | None = None,
    transactions_per_day: float = 2_000.0,
    peak_to_trough: float = 4.0,
    peak_hour: float = 14.0,
    pair_sampler: RecurrentPairSampler | None = None,
) -> Workload:
    """Daily-rhythm workload via Poisson thinning.

    The arrival rate follows a sinusoid with its maximum at ``peak_hour``
    and a ``peak_to_trough`` ratio between the busiest and quietest
    moment of the day; the mean daily count stays ``transactions_per_day``.
    Implemented by thinning a homogeneous process at the peak rate
    (Lewis–Shedler), so arrivals are an exact inhomogeneous Poisson
    process.
    """
    return Workload(
        list(
            stream_diurnal_workload(
                rng,
                nodes,
                n_transactions,
                sizes,
                transactions_per_day=transactions_per_day,
                peak_to_trough=peak_to_trough,
                peak_hour=peak_hour,
                pair_sampler=pair_sampler,
            )
        )
    )


def stream_hotspot_workload(
    rng: random.Random,
    nodes: Sequence[NodeId],
    n_transactions: int,
    sizes: PaymentSizeDistribution | None = None,
    transactions_per_day: float = 2_000.0,
    hotspot_count: int = 4,
    hotspot_share: float = 0.6,
    pair_sampler: RecurrentPairSampler | None = None,
) -> Iterator[Transaction]:
    """Generator twin of :func:`generate_hotspot_workload` — one
    transaction at a time, identical RNG draw order, O(1) memory."""
    if n_transactions < 0:
        raise ValueError("n_transactions must be non-negative")
    if transactions_per_day <= 0:
        raise ValueError("transactions_per_day must be positive")
    if not 0.0 <= hotspot_share <= 1.0:
        raise ValueError(f"hotspot_share must be in [0, 1], got {hotspot_share}")
    if not 1 <= hotspot_count < len(nodes):
        raise ValueError(
            f"hotspot_count must be in [1, {len(nodes) - 1}], got {hotspot_count}"
        )
    distribution = sizes or ripple_size_distribution()
    sampler = pair_sampler or _default_pair_sampler(rng, nodes)
    hotspots = rng.sample(list(nodes), hotspot_count)
    hotspot_weights = [1.0 / (rank + 1.0) for rank in range(hotspot_count)]
    # Cumulative weights are what rng.choices() computes internally on
    # every call; hoisting them out of the per-transaction loop skips
    # that O(hotspot_count) rebuild per payment.
    hotspot_cum_weights = list(accumulate(hotspot_weights))
    mean_gap = SECONDS_PER_DAY / transactions_per_day

    def emit() -> Iterator[Transaction]:
        now = 0.0
        for txid in range(n_transactions):
            now += rng.expovariate(1.0 / mean_gap)
            sender, receiver = sampler.sample_pair()
            if rng.random() < hotspot_share:
                receiver = rng.choices(
                    hotspots, cum_weights=hotspot_cum_weights
                )[0]
                if receiver == sender:
                    # Resample among the remaining hotspots with their Zipf
                    # weights renormalized.  Redirecting to the *next* rank
                    # instead would bias mass toward whichever hotspot sits
                    # adjacent to a frequent sender.
                    remaining = [spot for spot in hotspots if spot != sender]
                    if remaining:
                        weights = [
                            weight
                            for spot, weight in zip(hotspots, hotspot_weights)
                            if spot != sender
                        ]
                        receiver = rng.choices(remaining, weights=weights)[0]
                    else:  # single usable hotspot == the sender
                        receiver = next(n for n in nodes if n != sender)
            yield Transaction(
                txid=txid,
                sender=sender,
                receiver=receiver,
                amount=distribution.sample(rng),
                time=now,
            )

    return emit()


def generate_hotspot_workload(
    rng: random.Random,
    nodes: Sequence[NodeId],
    n_transactions: int,
    sizes: PaymentSizeDistribution | None = None,
    transactions_per_day: float = 2_000.0,
    hotspot_count: int = 4,
    hotspot_share: float = 0.6,
    pair_sampler: RecurrentPairSampler | None = None,
) -> Workload:
    """Many-to-one congestion: hotspot receivers absorb most payments.

    ``hotspot_share`` of payments are redirected to one of
    ``hotspot_count`` fixed hotspot nodes (Zipf-weighted, so the first
    hotspot is the busiest); the rest follow the ordinary recurrent pair
    process.  Models merchant/exchange concentration — the Fig-4b
    "top-5 receivers" effect pushed to a topology-wide extreme.
    """
    return Workload(
        list(
            stream_hotspot_workload(
                rng,
                nodes,
                n_transactions,
                sizes,
                transactions_per_day=transactions_per_day,
                hotspot_count=hotspot_count,
                hotspot_share=hotspot_share,
                pair_sampler=pair_sampler,
            )
        )
    )


def generate_mixed_workload(
    rng: random.Random,
    nodes: Sequence[NodeId],
    n_transactions: int,
    mice_fraction: float = 0.9,
    mice_median: float = 5.0,
    elephant_median: float = 2_000.0,
    mice_sigma: float = 1.2,
    elephant_sigma: float = 1.0,
    transactions_per_day: float = 2_000.0,
    pair_sampler: RecurrentPairSampler | None = None,
) -> Workload:
    """Explicit mice–elephant mixture with every knob exposed.

    Unlike the trace-calibrated distributions (fixed 90/10 split solved
    from §2.2 statistics), this builds the two log-normal components
    directly, so sweeps can vary the elephant share or the size gap
    without re-solving the calibration.  Poisson arrivals and the
    recurrent pair process are the same as the calibrated generators.
    """
    if not 0.0 <= mice_fraction <= 1.0:
        raise ValueError(f"mice_fraction must be in [0, 1], got {mice_fraction}")
    if mice_median >= elephant_median:
        raise ValueError(
            f"mice_median ({mice_median}) must be below "
            f"elephant_median ({elephant_median})"
        )
    from repro.traces.generators import generate_workload

    distribution = PaymentSizeDistribution(
        body=LogNormalSpec(median=mice_median, sigma=mice_sigma),
        tail=LogNormalSpec(median=elephant_median, sigma=elephant_sigma),
        tail_weight=1.0 - mice_fraction,
    )
    return generate_workload(
        rng,
        nodes,
        n_transactions,
        distribution,
        transactions_per_day=transactions_per_day,
        pair_sampler=pair_sampler or _default_pair_sampler(rng, nodes),
    )
