"""Metrics for the trace-driven simulation (§4.1, "Metrics").

The paper's primary metrics are **success ratio** (fraction of payments
delivered), **success volume** (total delivered amount), and the **number
of probing messages**.  We additionally track payment messages, fees, and
the elephant/mice breakdown needed by the Fig 10/11 microbenchmarks.

Runs produced by the concurrent engine
(:mod:`repro.sim.concurrent`) also carry per-payment latency, retry
counts, and timeout failures; those extra fields
(:data:`CONCURRENT_METRIC_FIELDS`) are appended to the stored record
only when ``engine="concurrent"`` so sequential store records stay
byte-identical to the pre-concurrent format.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.traces.workload import percentile

#: The per-run metric fields persisted to the experiment store
#: (:mod:`repro.eval.store`) and consumed by :meth:`AveragedMetrics.of`.
#: Order is the canonical column order of generated reports.
METRIC_FIELDS: tuple[str, ...] = (
    "transactions",
    "success_ratio",
    "success_volume",
    "probe_messages",
    "payment_messages",
    "fee_to_volume_percent",
    "mice_success_ratio",
    "elephant_success_ratio",
    "mice_success_volume",
    "elephant_success_volume",
    "mice_probe_messages",
    "elephant_probe_messages",
)

#: Extra per-run fields recorded only by the concurrent engine
#: (latencies in simulated seconds, over *successful* payments).
CONCURRENT_METRIC_FIELDS: tuple[str, ...] = (
    "latency_p50",
    "latency_p95",
    "latency_mean",
    "retries_total",
    "timeout_failures",
)

#: Resilience fields recorded only when a fault plan was injected
#: (:mod:`repro.sim.faults`).  Appended after the engine's field set, so
#: fault-free records — sequential and concurrent — keep their exact
#: pre-faults shape and store digests.
RESILIENCE_METRIC_FIELDS: tuple[str, ...] = (
    "attack_success_ratio",
    "control_success_ratio",
    "resilience_delta",
    "recovery_half_life",
    "adversary_escrow",
)

#: Fee-market fields recorded only for policy-aware runs (BOLT #7
#: channel policies assigned — see :mod:`repro.network.fees`).  Appended
#: after the resilience set, so fee-free records keep their exact
#: pre-policy shape and store digests.
FEE_METRIC_FIELDS: tuple[str, ...] = (
    "fee_paid_total",
    "fee_p50",
    "hub_revenue",
)

#: Multi-part payment fields recorded only when MPP is enabled
#: (:mod:`repro.sim.mpp`).  Appended after the fee set, so MPP-free
#: records keep their exact pre-MPP shape and store digests.
MPP_METRIC_FIELDS: tuple[str, ...] = (
    "mpp_payments",
    "parts_per_payment",
    "partial_release_count",
    "mpp_success_ratio",
    "mpp_latency_p95",
)


def mpp_metrics(records: Sequence["TransactionRecord"]) -> dict[str, float]:
    """The :data:`MPP_METRIC_FIELDS` values for one MPP-enabled run.

    A payment counts as multi-part when it fanned out into more than
    one concurrently-held part (``record.parts > 1``);
    ``partial_release_count`` totals sibling holds refunded because a
    part failed or the shared deadline passed — the observable cost of
    the all-or-nothing guarantee.
    """
    multi = [r for r in records if r.parts > 1]
    settled = [r for r in multi if r.success]
    latencies = [r.latency for r in settled]
    return {
        "mpp_payments": float(len(multi)),
        "parts_per_payment": (
            sum(r.parts for r in multi) / len(multi) if multi else 0.0
        ),
        "partial_release_count": float(
            sum(r.partial_releases for r in records)
        ),
        "mpp_success_ratio": (
            len(settled) / len(multi) if multi else 0.0
        ),
        "mpp_latency_p95": (
            percentile(latencies, 0.95) if latencies else 0.0
        ),
    }


def fee_metrics(
    records: Sequence["TransactionRecord"],
    revenue_by_node: Mapping[object, float],
) -> dict[str, float]:
    """The :data:`FEE_METRIC_FIELDS` values for one policy-aware run.

    ``revenue_by_node`` accumulates each intermediary's pocketed fees
    (:func:`repro.network.fees.fee_breakdown` summed over settled
    payments); ``hub_revenue`` reports the best-earning node — the
    fee-market scenarios' revenue-vs-success tradeoff axis.
    """
    fees = [r.fee for r in records if r.success]
    return {
        "fee_paid_total": float(sum(fees)),
        "fee_p50": float(percentile(fees, 0.5)) if fees else 0.0,
        "hub_revenue": float(max(revenue_by_node.values(), default=0.0)),
    }


@dataclass(frozen=True)
class TransactionRecord:
    """Per-transaction accounting captured by the engine.

    ``latency``, ``retries``, and ``timed_out`` are only meaningful for
    concurrent-engine runs; the sequential engine leaves them at their
    defaults (zero-cost, so its records are unchanged).  ``latency`` is
    simulated seconds from the payment's first start to its settle (or
    final failure); ``retries`` counts engine-level re-attempts beyond
    the first; ``timed_out`` marks failures caused by the hold timeout.

    ``parts`` and ``partial_releases`` are only meaningful for
    MPP-enabled runs (:mod:`repro.sim.mpp`): ``parts`` is the number of
    sub-payment parts the payment fanned out into (0 for single-shot
    payments in MPP-free runs, 1 when MPP was on but the payment did
    not split), and ``partial_releases`` counts sibling part holds
    refunded because a part failed or the shared deadline passed.
    """

    txid: int
    amount: float
    success: bool
    fee: float
    is_elephant: bool
    probe_messages: int
    payment_messages: int
    paths_used: int
    latency: float = 0.0
    retries: int = 0
    timed_out: bool = False
    parts: int = 0
    partial_releases: int = 0


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run for one scheme.

    ``engine`` names the engine that produced the run (``"sequential"``
    or ``"concurrent"``); it selects which field set :meth:`to_record`
    persists.  ``resilience`` is populated (with exactly
    :data:`RESILIENCE_METRIC_FIELDS`) only when the run injected a
    fault plan; ``fees`` (exactly :data:`FEE_METRIC_FIELDS`, see
    :func:`fee_metrics`) only when the run's graph carried BOLT channel
    policies; ``mpp`` (exactly :data:`MPP_METRIC_FIELDS`, see
    :func:`mpp_metrics`) only when the run enabled multi-part payments.
    All stay empty — and invisible to :meth:`to_record` — otherwise.
    """

    scheme: str
    records: list[TransactionRecord] = field(default_factory=list)
    engine: str = "sequential"
    resilience: dict = field(default_factory=dict)
    fees: dict = field(default_factory=dict)
    mpp: dict = field(default_factory=dict)

    # ------------------------------------------------------------- scalars

    @property
    def transactions(self) -> int:
        return len(self.records)

    @property
    def succeeded(self) -> int:
        return sum(1 for record in self.records if record.success)

    @property
    def success_ratio(self) -> float:
        return self.succeeded / self.transactions if self.records else 0.0

    @property
    def attempted_volume(self) -> float:
        return sum(record.amount for record in self.records)

    @property
    def success_volume(self) -> float:
        return sum(record.amount for record in self.records if record.success)

    @property
    def probe_messages(self) -> int:
        return sum(record.probe_messages for record in self.records)

    @property
    def payment_messages(self) -> int:
        return sum(record.payment_messages for record in self.records)

    @property
    def total_fees(self) -> float:
        return sum(record.fee for record in self.records if record.success)

    @property
    def fee_to_volume_percent(self) -> float:
        """Fig 9's metric: total fees as a percentage of delivered volume."""
        volume = self.success_volume
        return 100.0 * self.total_fees / volume if volume > 0 else 0.0

    # --------------------------------------------------- concurrency metrics

    @property
    def success_latencies(self) -> list[float]:
        """Latency of every *successful* payment (simulated seconds).

        Latency percentiles are conventionally reported over delivered
        payments; failures carry their own signal via
        :attr:`timeout_failures` and the success ratio.
        """
        return [r.latency for r in self.records if r.success]

    @property
    def latency_p50(self) -> float:
        """Median latency of successful payments (0.0 when none)."""
        latencies = self.success_latencies
        return percentile(latencies, 0.5) if latencies else 0.0

    @property
    def latency_p95(self) -> float:
        """95th-percentile latency of successful payments (0.0 when none)."""
        latencies = self.success_latencies
        return percentile(latencies, 0.95) if latencies else 0.0

    @property
    def latency_mean(self) -> float:
        """Mean latency of successful payments (0.0 when none)."""
        latencies = self.success_latencies
        return sum(latencies) / len(latencies) if latencies else 0.0

    @property
    def retries_total(self) -> int:
        """Engine-level re-attempts summed over all payments."""
        return sum(r.retries for r in self.records)

    @property
    def timeout_failures(self) -> int:
        """Payments that failed because their holds hit the timeout."""
        return sum(1 for r in self.records if r.timed_out)

    # ------------------------------------------------------ resilience

    @property
    def attack_success_ratio(self) -> float:
        """Success rate inside attack windows (0.0 without faults)."""
        return float(self.resilience.get("attack_success_ratio", 0.0))

    @property
    def control_success_ratio(self) -> float:
        """Success rate outside attack windows (0.0 without faults)."""
        return float(self.resilience.get("control_success_ratio", 0.0))

    @property
    def resilience_delta(self) -> float:
        """Control minus attack success ratio (0.0 without faults)."""
        return float(self.resilience.get("resilience_delta", 0.0))

    @property
    def recovery_half_life(self) -> float:
        """Seconds after heal until the success rate recovers."""
        return float(self.resilience.get("recovery_half_life", 0.0))

    @property
    def adversary_escrow(self) -> float:
        """Fund-seconds of capacity held by adversary jams."""
        return float(self.resilience.get("adversary_escrow", 0.0))

    # ------------------------------------------------------ fee market

    @property
    def fee_paid_total(self) -> float:
        """Total fees paid by senders of successful payments."""
        return float(self.fees.get("fee_paid_total", 0.0))

    @property
    def fee_p50(self) -> float:
        """Median fee across successful payments (0.0 without policies)."""
        return float(self.fees.get("fee_p50", 0.0))

    @property
    def hub_revenue(self) -> float:
        """Fees pocketed by the best-earning intermediary node."""
        return float(self.fees.get("hub_revenue", 0.0))

    # ------------------------------------------------- multi-part payments

    @property
    def mpp_payments(self) -> float:
        """Payments that fanned out into more than one part."""
        return float(self.mpp.get("mpp_payments", 0.0))

    @property
    def parts_per_payment(self) -> float:
        """Mean part count over multi-part payments (0.0 without MPP)."""
        return float(self.mpp.get("parts_per_payment", 0.0))

    @property
    def partial_release_count(self) -> float:
        """Sibling part holds refunded by the all-or-nothing abort."""
        return float(self.mpp.get("partial_release_count", 0.0))

    @property
    def mpp_success_ratio(self) -> float:
        """Success rate over multi-part payments only."""
        return float(self.mpp.get("mpp_success_ratio", 0.0))

    @property
    def mpp_latency_p95(self) -> float:
        """95th-percentile latency of settled multi-part payments."""
        return float(self.mpp.get("mpp_latency_p95", 0.0))

    # ------------------------------------------------------ class breakdown

    def _class_records(self, elephant: bool) -> list[TransactionRecord]:
        return [r for r in self.records if r.is_elephant == elephant]

    @property
    def mice_success_volume(self) -> float:
        return sum(r.amount for r in self._class_records(False) if r.success)

    @property
    def elephant_success_volume(self) -> float:
        return sum(r.amount for r in self._class_records(True) if r.success)

    @property
    def mice_probe_messages(self) -> int:
        """Probing spent on mice-class payments (the Fig 11b metric)."""
        return sum(r.probe_messages for r in self._class_records(False))

    @property
    def elephant_probe_messages(self) -> int:
        return sum(r.probe_messages for r in self._class_records(True))

    @property
    def mice_success_ratio(self) -> float:
        mice = self._class_records(False)
        if not mice:
            return 0.0
        return sum(1 for r in mice if r.success) / len(mice)

    @property
    def elephant_success_ratio(self) -> float:
        elephants = self._class_records(True)
        if not elephants:
            return 0.0
        return sum(1 for r in elephants if r.success) / len(elephants)

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline metrics (handy for tables/tests)."""
        return {
            "transactions": float(self.transactions),
            "success_ratio": self.success_ratio,
            "success_volume": self.success_volume,
            "probe_messages": float(self.probe_messages),
            "payment_messages": float(self.payment_messages),
            "fee_to_volume_percent": self.fee_to_volume_percent,
        }

    def to_record(self) -> dict[str, float]:
        """Every persisted metric value as a flat float dict.

        This is the structured record the experiment store persists; it
        carries everything :meth:`AveragedMetrics.of` reads, so a stored
        run can stand in for a live :class:`SimulationResult` when a
        sweep resumes (see :class:`StoredResult`).  Concurrent-engine
        runs additionally persist :data:`CONCURRENT_METRIC_FIELDS`;
        sequential records are unchanged from the pre-concurrent format.
        Runs with an injected fault plan append
        :data:`RESILIENCE_METRIC_FIELDS`; fault-free records are
        byte-identical to the pre-faults format.  Policy-aware runs
        append :data:`FEE_METRIC_FIELDS`; policy-free records are
        byte-identical to the pre-policy format.  MPP-enabled runs
        append :data:`MPP_METRIC_FIELDS` last; MPP-free records are
        byte-identical to the pre-MPP format.
        """
        names = METRIC_FIELDS
        if self.engine == "concurrent":
            names = METRIC_FIELDS + CONCURRENT_METRIC_FIELDS
        if self.resilience:
            names = names + RESILIENCE_METRIC_FIELDS
        if self.fees:
            names = names + FEE_METRIC_FIELDS
        if self.mpp:
            names = names + MPP_METRIC_FIELDS
        return {name: float(getattr(self, name)) for name in names}


class P2Quantile:
    """Single-quantile P² estimator (Jain & Chlamtac, CACM 1985).

    Tracks a running quantile in O(1) memory: five marker heights whose
    positions are nudged toward the ideal quantile positions with
    parabolic interpolation.  The first five observations are kept
    exactly, so tiny runs report the same value the list-based
    :func:`~repro.traces.workload.percentile` would.  Accuracy for
    larger runs is within a fraction of a percent for smooth
    distributions — the documented tolerance of streaming-mode latency
    and fee quantiles.  On strongly *discrete* distributions (concurrent
    latencies cluster at multiples of the hop round-trip) the parabolic
    markers can settle between adjacent modes, so differential checks
    should allow a tolerance of about one inter-mode gap.
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._initial: list[float] = []
        self._heights: list[float] | None = None
        self._positions: list[float] = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired: list[float] = [
            1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0
        ]
        self._increments: tuple[float, ...] = (
            0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0
        )

    def observe(self, value: float) -> None:
        self.count += 1
        if self._heights is None:
            self._initial.append(float(value))
            if len(self._initial) == 5:
                self._heights = sorted(self._initial)
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = float(value)
            cell = 0
        elif value >= heights[4]:
            heights[4] = float(value)
            cell = 3
        else:
            cell = 0
            for i in range(1, 4):
                if heights[i] <= value:
                    cell = i
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            drift = self._desired[i] - positions[i]
            if (drift >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                drift <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if drift > 0 else -1.0
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (exact below five observations, 0.0 empty)."""
        if self._heights is None:
            return percentile(self._initial, self.q) if self._initial else 0.0
        return self._heights[2]


class StreamingMetricsAccumulator:
    """Single-pass replacement for the ``records`` list of a run.

    The engines' streaming paths feed each finished
    :class:`TransactionRecord` here and drop it, so a trace-scale run
    never holds more than the in-flight window of transactions.  Running
    sums and counts make every counter-style metric (success ratio,
    volumes, message counts, per-class breakdowns) *exact*; the only
    approximations are the quantile metrics (latency p50/p95, fee p50,
    MPP latency p95), estimated by :class:`P2Quantile` — and the
    elephant–mice split itself when the classification threshold is
    estimated online rather than hinted.

    ``track_fees`` / ``track_mpp`` mirror the conditions under which the
    list-based path populates ``fees`` / ``mpp``, so
    :meth:`result`'s record keeps the exact conditional field shape of
    :meth:`SimulationResult.to_record`.
    """

    def __init__(
        self,
        scheme: str,
        engine: str = "sequential",
        track_fees: bool = False,
        track_mpp: bool = False,
    ) -> None:
        self.scheme = scheme
        self.engine = engine
        self.track_fees = track_fees
        self.track_mpp = track_mpp
        self.transactions = 0
        self.succeeded = 0
        self.attempted_volume = 0.0
        self.success_volume = 0.0
        self.probe_messages = 0
        self.payment_messages = 0
        self.total_fees = 0.0
        self._class_count = [0, 0]  # [mice, elephant]
        self._class_succeeded = [0, 0]
        self._class_success_volume = [0.0, 0.0]
        self._class_probe_messages = [0, 0]
        self._latency_sum = 0.0
        self._latency_p50 = P2Quantile(0.5)
        self._latency_p95 = P2Quantile(0.95)
        self.retries_total = 0
        self.timeout_failures = 0
        self._fee_p50 = P2Quantile(0.5)
        self._mpp_payments = 0
        self._mpp_parts_sum = 0
        self._mpp_settled = 0
        self._partial_releases = 0
        self._mpp_latency_p95 = P2Quantile(0.95)

    def observe(self, record: TransactionRecord) -> None:
        self.transactions += 1
        self.attempted_volume += record.amount
        self.probe_messages += record.probe_messages
        self.payment_messages += record.payment_messages
        cls = 1 if record.is_elephant else 0
        self._class_count[cls] += 1
        self._class_probe_messages[cls] += record.probe_messages
        self.retries_total += record.retries
        if record.timed_out:
            self.timeout_failures += 1
        if record.success:
            self.succeeded += 1
            self.success_volume += record.amount
            self.total_fees += record.fee
            self._class_succeeded[cls] += 1
            self._class_success_volume[cls] += record.amount
            self._latency_sum += record.latency
            self._latency_p50.observe(record.latency)
            self._latency_p95.observe(record.latency)
            # Always tracked (one O(1) update per success): the dynamic
            # engine may flip track_fees mid-run when a fee controller
            # attaches the first policies at a gossip tick.
            self._fee_p50.observe(record.fee)
        if self.track_mpp:
            self._partial_releases += record.partial_releases
            if record.parts > 1:
                self._mpp_payments += 1
                self._mpp_parts_sum += record.parts
                if record.success:
                    self._mpp_settled += 1
                    self._mpp_latency_p95.observe(record.latency)

    def result(
        self,
        revenue_by_node: Mapping[object, float] | None = None,
        mice_threshold: float = 0.0,
    ) -> "StreamingSimulationResult":
        """Freeze the accumulated counters into a result object."""
        fees: dict[str, float] = {}
        if self.track_fees:
            fees = {
                "fee_paid_total": float(self.total_fees),
                "fee_p50": float(self._fee_p50.value),
                "hub_revenue": float(
                    max(revenue_by_node.values(), default=0.0)
                    if revenue_by_node
                    else 0.0
                ),
            }
        mpp: dict[str, float] = {}
        if self.track_mpp:
            mpp = {
                "mpp_payments": float(self._mpp_payments),
                "parts_per_payment": (
                    self._mpp_parts_sum / self._mpp_payments
                    if self._mpp_payments
                    else 0.0
                ),
                "partial_release_count": float(self._partial_releases),
                "mpp_success_ratio": (
                    self._mpp_settled / self._mpp_payments
                    if self._mpp_payments
                    else 0.0
                ),
                "mpp_latency_p95": float(self._mpp_latency_p95.value),
            }
        mice, elephants = self._class_count
        return StreamingSimulationResult(
            scheme=self.scheme,
            engine=self.engine,
            transactions=float(self.transactions),
            succeeded=float(self.succeeded),
            success_ratio=(
                self.succeeded / self.transactions if self.transactions else 0.0
            ),
            attempted_volume=self.attempted_volume,
            success_volume=self.success_volume,
            probe_messages=float(self.probe_messages),
            payment_messages=float(self.payment_messages),
            total_fees=self.total_fees,
            fee_to_volume_percent=(
                100.0 * self.total_fees / self.success_volume
                if self.success_volume > 0
                else 0.0
            ),
            mice_success_ratio=(
                self._class_succeeded[0] / mice if mice else 0.0
            ),
            elephant_success_ratio=(
                self._class_succeeded[1] / elephants if elephants else 0.0
            ),
            mice_success_volume=self._class_success_volume[0],
            elephant_success_volume=self._class_success_volume[1],
            mice_probe_messages=float(self._class_probe_messages[0]),
            elephant_probe_messages=float(self._class_probe_messages[1]),
            latency_p50=self._latency_p50.value,
            latency_p95=self._latency_p95.value,
            latency_mean=(
                self._latency_sum / self.succeeded if self.succeeded else 0.0
            ),
            retries_total=float(self.retries_total),
            timeout_failures=float(self.timeout_failures),
            mice_threshold=mice_threshold,
            fees=fees,
            mpp=mpp,
        )


@dataclass(frozen=True)
class StreamingSimulationResult:
    """A run aggregated on the fly — no per-transaction records held.

    Carries the same metric names as :class:`SimulationResult` (plain
    fields where that class computes properties over ``records``), so it
    mixes transparently into :meth:`AveragedMetrics.of` and persists
    through an identically-shaped :meth:`to_record`.  ``resilience`` is
    always empty: fault plans need the full ordered record list (see
    :func:`repro.sim.faults.resilience_metrics`), so streaming runs
    refuse fault injection rather than approximate it.
    """

    scheme: str
    engine: str
    transactions: float
    succeeded: float
    success_ratio: float
    attempted_volume: float
    success_volume: float
    probe_messages: float
    payment_messages: float
    total_fees: float
    fee_to_volume_percent: float
    mice_success_ratio: float
    elephant_success_ratio: float
    mice_success_volume: float
    elephant_success_volume: float
    mice_probe_messages: float
    elephant_probe_messages: float
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_mean: float = 0.0
    retries_total: float = 0.0
    timeout_failures: float = 0.0
    #: The elephant–mice cutoff used for classification (hinted or
    #: reservoir-estimated); informational, not persisted.
    mice_threshold: float = 0.0
    resilience: dict = field(default_factory=dict)
    fees: dict = field(default_factory=dict)
    mpp: dict = field(default_factory=dict)

    @property
    def fee_paid_total(self) -> float:
        return float(self.fees.get("fee_paid_total", 0.0))

    @property
    def fee_p50(self) -> float:
        return float(self.fees.get("fee_p50", 0.0))

    @property
    def hub_revenue(self) -> float:
        return float(self.fees.get("hub_revenue", 0.0))

    @property
    def mpp_payments(self) -> float:
        return float(self.mpp.get("mpp_payments", 0.0))

    @property
    def parts_per_payment(self) -> float:
        return float(self.mpp.get("parts_per_payment", 0.0))

    @property
    def partial_release_count(self) -> float:
        return float(self.mpp.get("partial_release_count", 0.0))

    @property
    def mpp_success_ratio(self) -> float:
        return float(self.mpp.get("mpp_success_ratio", 0.0))

    @property
    def mpp_latency_p95(self) -> float:
        return float(self.mpp.get("mpp_latency_p95", 0.0))

    @property
    def attack_success_ratio(self) -> float:
        return float(self.resilience.get("attack_success_ratio", 0.0))

    @property
    def control_success_ratio(self) -> float:
        return float(self.resilience.get("control_success_ratio", 0.0))

    @property
    def resilience_delta(self) -> float:
        return float(self.resilience.get("resilience_delta", 0.0))

    @property
    def recovery_half_life(self) -> float:
        return float(self.resilience.get("recovery_half_life", 0.0))

    @property
    def adversary_escrow(self) -> float:
        return float(self.resilience.get("adversary_escrow", 0.0))

    def summary(self) -> dict[str, float]:
        return {
            "transactions": float(self.transactions),
            "success_ratio": self.success_ratio,
            "success_volume": self.success_volume,
            "probe_messages": float(self.probe_messages),
            "payment_messages": float(self.payment_messages),
            "fee_to_volume_percent": self.fee_to_volume_percent,
        }

    def to_record(self) -> dict[str, float]:
        """Same conditional field shape as
        :meth:`SimulationResult.to_record`."""
        names = METRIC_FIELDS
        if self.engine == "concurrent":
            names = METRIC_FIELDS + CONCURRENT_METRIC_FIELDS
        if self.resilience:
            names = names + RESILIENCE_METRIC_FIELDS
        if self.fees:
            names = names + FEE_METRIC_FIELDS
        if self.mpp:
            names = names + MPP_METRIC_FIELDS
        return {name: float(getattr(self, name)) for name in names}


@dataclass(frozen=True)
class StoredResult:
    """A run reloaded from the experiment store.

    Field names mirror the :class:`SimulationResult` properties that
    :meth:`AveragedMetrics.of` consumes, so stored and freshly-computed
    runs mix transparently in one average.  Metrics are stored at full
    float precision, which keeps resumed aggregates bit-identical to a
    clean serial run.
    """

    scheme: str
    transactions: float
    success_ratio: float
    success_volume: float
    probe_messages: float
    payment_messages: float
    fee_to_volume_percent: float
    mice_success_ratio: float
    elephant_success_ratio: float
    mice_success_volume: float
    elephant_success_volume: float
    mice_probe_messages: float
    elephant_probe_messages: float
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_mean: float = 0.0
    retries_total: float = 0.0
    timeout_failures: float = 0.0
    attack_success_ratio: float = 0.0
    control_success_ratio: float = 0.0
    resilience_delta: float = 0.0
    recovery_half_life: float = 0.0
    adversary_escrow: float = 0.0
    fee_paid_total: float = 0.0
    fee_p50: float = 0.0
    hub_revenue: float = 0.0
    mpp_payments: float = 0.0
    parts_per_payment: float = 0.0
    partial_release_count: float = 0.0
    mpp_success_ratio: float = 0.0
    mpp_latency_p95: float = 0.0

    @classmethod
    def from_record(
        cls, scheme: str, metrics: Mapping[str, float]
    ) -> "StoredResult":
        """Rehydrate from a store record's ``metrics`` mapping.

        The concurrency, resilience, fee, and MPP fields default to
        zero when absent, so records written by sequential, fault-free,
        policy-free, or MPP-free runs (which do not persist them)
        rehydrate unchanged.
        """
        return cls(
            scheme=scheme,
            **{name: float(metrics[name]) for name in METRIC_FIELDS},
            **{
                name: float(metrics.get(name, 0.0))
                for name in CONCURRENT_METRIC_FIELDS
                + RESILIENCE_METRIC_FIELDS
                + FEE_METRIC_FIELDS
                + MPP_METRIC_FIELDS
            },
        )


@dataclass(frozen=True)
class AveragedMetrics:
    """Mean of the headline metrics over several runs (paper: 5 runs).

    The concurrency fields average to zero for sequential runs (every
    per-run value is zero there), so one dataclass serves both engines.
    """

    scheme: str
    runs: int
    success_ratio: float
    success_volume: float
    probe_messages: float
    payment_messages: float
    fee_to_volume_percent: float
    mice_success_volume: float
    elephant_success_volume: float
    mice_probe_messages: float
    elephant_probe_messages: float
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_mean: float = 0.0
    retries_total: float = 0.0
    timeout_failures: float = 0.0
    attack_success_ratio: float = 0.0
    control_success_ratio: float = 0.0
    resilience_delta: float = 0.0
    recovery_half_life: float = 0.0
    adversary_escrow: float = 0.0
    fee_paid_total: float = 0.0
    fee_p50: float = 0.0
    hub_revenue: float = 0.0
    mpp_payments: float = 0.0
    parts_per_payment: float = 0.0
    partial_release_count: float = 0.0
    mpp_success_ratio: float = 0.0
    mpp_latency_p95: float = 0.0

    @classmethod
    def of(cls, results: Sequence[SimulationResult]) -> "AveragedMetrics":
        if not results:
            raise ValueError("no results to average")
        schemes = {result.scheme for result in results}
        if len(schemes) != 1:
            raise ValueError(f"mixed schemes in average: {schemes}")
        n = len(results)

        def mean(values: Iterable[float]) -> float:
            values = list(values)
            return sum(values) / len(values)

        return cls(
            scheme=results[0].scheme,
            runs=n,
            success_ratio=mean(r.success_ratio for r in results),
            success_volume=mean(r.success_volume for r in results),
            probe_messages=mean(r.probe_messages for r in results),
            payment_messages=mean(r.payment_messages for r in results),
            fee_to_volume_percent=mean(
                r.fee_to_volume_percent for r in results
            ),
            mice_success_volume=mean(r.mice_success_volume for r in results),
            elephant_success_volume=mean(
                r.elephant_success_volume for r in results
            ),
            mice_probe_messages=mean(r.mice_probe_messages for r in results),
            elephant_probe_messages=mean(
                r.elephant_probe_messages for r in results
            ),
            latency_p50=mean(r.latency_p50 for r in results),
            latency_p95=mean(r.latency_p95 for r in results),
            latency_mean=mean(r.latency_mean for r in results),
            retries_total=mean(r.retries_total for r in results),
            timeout_failures=mean(r.timeout_failures for r in results),
            attack_success_ratio=mean(
                r.attack_success_ratio for r in results
            ),
            control_success_ratio=mean(
                r.control_success_ratio for r in results
            ),
            resilience_delta=mean(r.resilience_delta for r in results),
            recovery_half_life=mean(r.recovery_half_life for r in results),
            adversary_escrow=mean(r.adversary_escrow for r in results),
            fee_paid_total=mean(r.fee_paid_total for r in results),
            fee_p50=mean(r.fee_p50 for r in results),
            hub_revenue=mean(r.hub_revenue for r in results),
            mpp_payments=mean(r.mpp_payments for r in results),
            parts_per_payment=mean(r.parts_per_payment for r in results),
            partial_release_count=mean(
                r.partial_release_count for r in results
            ),
            mpp_success_ratio=mean(r.mpp_success_ratio for r in results),
            mpp_latency_p95=mean(r.mpp_latency_p95 for r in results),
        )
