"""Report generation benchmark: the `repro report --smoke` pipeline.

Times the full store-backed report matrix (run -> record -> aggregate ->
tables + figures) at smoke scale, and asserts the structural acceptance
criteria: every scheme appears in every table, figures exist for the
headline metrics, and a second invocation resumes from the record store
instead of recomputing.
"""

import tempfile
from pathlib import Path

from _common import once, save_result

from repro.eval.report import TABLES, generate_report, report_factories
from repro.eval.store import ExperimentStore


def test_report_generation(benchmark):
    out_dir = Path(tempfile.mkdtemp(prefix="bench_report_"))
    artifacts = once(benchmark, lambda: generate_report(out_dir, smoke=True))

    report_text = artifacts.report_path.read_text()
    save_result("report_smoke", "repro report --smoke", report_text)

    # Flash and all four baselines in every generated table.
    for slug, path in artifacts.tables.items():
        text = path.read_text()
        for scheme in report_factories():
            assert f"| {scheme} |" in text, (slug, scheme)
    # Optional-metric tables appear only when a record carries the
    # metric: the smoke matrix has a concurrent cell (latency/timeout
    # tables) but no fault scenario (no resilience tables).
    assert set(artifacts.tables) == {
        table.slug
        for table in TABLES
        if not table.optional_metric
        or table.slug in ("latency_p95", "timeout_failures")
    }
    # Figures for the headline metrics (PNG with matplotlib, else SVG).
    assert {slug for slug in artifacts.figures} == {
        table.slug
        for table in TABLES
        if table.chart and table.slug in artifacts.tables
    }

    # Resume path: regeneration adds no new cells (all served from disk).
    store = ExperimentStore(out_dir)
    cells_before = store.completed_cells()
    generate_report(out_dir, smoke=True)
    assert store.completed_cells() == cells_before
