"""Fee policies for payment channels.

The paper assumes each directed channel charges a fee for relaying a partial
payment, with a *convex* charging function ``f(r)`` of the routed amount
``r``; in practice (§3.2) the function is linear — a fixed base fee plus a
volume-proportional component — which makes the fee-minimization program a
linear program.

The evaluation (§4.3, Fig 9) draws proportional rates randomly: 90% of the
channels charge 0.1%–1% of the volume and 10% charge 1%–10%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class FeePolicy(Protocol):
    """A charging function for one direction of a payment channel."""

    def fee(self, amount: float) -> float:
        """Fee charged for relaying ``amount`` through the channel."""
        ...

    def marginal_rate(self, amount: float) -> float:
        """Derivative of the fee at ``amount`` (used by convex solvers)."""
        ...


@dataclass(frozen=True)
class ZeroFee:
    """No fee — useful for pure-capacity experiments."""

    def fee(self, amount: float) -> float:
        return 0.0

    def marginal_rate(self, amount: float) -> float:
        return 0.0


@dataclass(frozen=True)
class LinearFee:
    """``fee(r) = base + rate * r`` — the practical policy of §3.2.

    ``base`` is charged only when a strictly positive amount is routed.
    """

    base: float = 0.0
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.rate < 0:
            raise ValueError("fee parameters must be non-negative")

    def fee(self, amount: float) -> float:
        if amount <= 0:
            return 0.0
        return self.base + self.rate * amount

    def marginal_rate(self, amount: float) -> float:
        return self.rate


@dataclass(frozen=True)
class QuadraticFee:
    """``fee(r) = base + rate * r + quad * r**2`` — a convex policy.

    Exercises the convex branch of the optimizer; the paper only requires
    ``f`` convex, so this is the stress-test policy.
    """

    base: float = 0.0
    rate: float = 0.0
    quad: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.rate < 0 or self.quad < 0:
            raise ValueError("fee parameters must be non-negative")

    def fee(self, amount: float) -> float:
        if amount <= 0:
            return 0.0
        return self.base + self.rate * amount + self.quad * amount * amount

    def marginal_rate(self, amount: float) -> float:
        return self.rate + 2.0 * self.quad * amount


@dataclass(frozen=True)
class ChannelPolicy:
    """One direction's BOLT #7 gossip record (``channel_update``).

    ``base_fee``/``fee_rate`` mirror ``fee_base_msat`` /
    ``fee_proportional_millionths`` (already scaled to this simulator's
    float units), ``cltv_delta`` the hop's timelock increment, and
    ``htlc_min``/``htlc_max`` the forwarding bounds.  The charging
    function matches :class:`LinearFee`, so a policy slots anywhere a
    :class:`FeePolicy` is accepted (fee optimizer, ``path_fee``), but —
    unlike the legacy policies — its *presence* switches a graph into
    policy-aware mode: compounded BOLT fee recursion, feasibility
    pruning, and fee-aware escrow (see :func:`hop_amounts`).
    """

    base_fee: float = 0.0
    fee_rate: float = 0.0
    cltv_delta: int = 40
    htlc_min: float = 0.0
    htlc_max: float = float("inf")

    def __post_init__(self) -> None:
        if self.base_fee < 0 or self.fee_rate < 0:
            raise ValueError("fee parameters must be non-negative")
        if self.cltv_delta < 0:
            raise ValueError("cltv_delta must be non-negative")
        if self.htlc_min < 0 or self.htlc_max < self.htlc_min:
            raise ValueError("need 0 <= htlc_min <= htlc_max")

    def fee(self, amount: float) -> float:
        if amount <= 0:
            return 0.0
        return self.base_fee + self.fee_rate * amount

    def marginal_rate(self, amount: float) -> float:
        return self.fee_rate

    def admits(self, amount: float, delivered: float) -> bool:
        """Feasibility of forwarding ``amount`` for a ``delivered`` payment.

        ``htlc_max`` is checked against the hop amount actually carried;
        ``htlc_min`` is checked against the *delivered* amount (the
        routing target), not the hop amount — a deliberate deviation
        from BOLT #7 that keeps feasibility monotone in the hop amount,
        which is what makes Dijkstra label dominance exact (see
        ``docs/ARCHITECTURE.md`` and ``tests/property/test_fee_oracle``).
        """
        return delivered >= self.htlc_min and amount <= self.htlc_max


#: The policy of a channel direction with no gossip record: free,
#: unconstrained forwarding.  Used for slots opened by churn after the
#: last policy assignment.
DEFAULT_POLICY = ChannelPolicy()


def hop_amounts(
    policies: list[FeePolicy], amount: float
) -> list[float]:
    """Per-edge amounts delivering ``amount`` along a path (BOLT #7).

    ``policies[i]`` is the policy of the path's ``i``-th directed edge.
    Working backwards from the receiver, every intermediate node keeps
    its own fee before forwarding, so edge ``i`` must carry the amount
    arriving at node ``i+1``; the sender's own edge adds no fee.  The
    returned list has one entry per edge; ``amounts[0] - amount`` is
    the total fee the sender pays.  The accumulation order (receiver to
    sender) is the canonical one — the routing kernels and the
    brute-force oracle both follow it, which is what makes their costs
    bit-identical.
    """
    amounts = [0.0] * len(policies)
    a = amount
    for i in range(len(policies) - 1, 0, -1):
        amounts[i] = a
        a = a + policies[i].fee(a)
    if policies:
        amounts[0] = a
    return amounts


def fee_breakdown(
    path: list, policies: list[FeePolicy], amount: float
) -> dict:
    """Per-node fee revenue for delivering ``amount`` along ``path``.

    Node ``path[i]`` (intermediate) pockets the difference between what
    arrives on its inbound edge and what it forwards — zero entries are
    omitted.  The sender and receiver never earn.
    """
    amounts = hop_amounts(policies, amount)
    revenue: dict = {}
    for i in range(1, len(amounts)):
        earned = amounts[i - 1] - amounts[i]
        if earned > 0:
            revenue[path[i]] = revenue.get(path[i], 0.0) + earned
    return revenue


def sample_paper_fee(rng: random.Random) -> LinearFee:
    """Draw one channel fee with the paper's Fig-9 mix.

    90% of the channels charge a proportional rate uniform in [0.1%, 1%),
    and the remaining 10% charge uniform in [1%, 10%).
    """
    if rng.random() < 0.9:
        rate = rng.uniform(0.001, 0.01)
    else:
        rate = rng.uniform(0.01, 0.10)
    return LinearFee(base=0.0, rate=rate)


def path_fee(policies: list[FeePolicy], amount: float) -> float:
    """Total fee of sending ``amount`` across a path's channel policies."""
    return sum(policy.fee(amount) for policy in policies)
