"""Fig 13: testbed evaluation on the 100-node Watts-Strogatz network.

Same protocol as Fig 12 at twice the network size (paper: Flash +34.4%
success volume vs Spider; ~19% lower delay; ~26% lower mice delay).
Bench scale: 2,000 transactions.
"""

from _common import once, save_result

from repro.eval import testbed_figure as run_testbed_figure


def test_fig13_testbed_100(benchmark):
    result = once(
        benchmark,
        lambda: run_testbed_figure(n_nodes=100, n_transactions=2_000, seed=8),
    )
    save_result("fig13", "Fig 13 - testbed, 100 nodes", result.format())
    for i in range(len(result.intervals)):
        flash = result.table["Flash"][i]
        spider = result.table["Spider"][i]
        sp = result.table["SP"][i]
        assert flash["success_volume"] > spider["success_volume"]
        assert flash["success_volume"] > sp["success_volume"]
        assert flash["success_ratio"] > sp["success_ratio"]
        assert flash["norm_mice_delay"] < spider["norm_mice_delay"]
        assert flash["norm_delay"] < 1.25 * spider["norm_delay"]
