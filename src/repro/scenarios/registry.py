"""Registry core of the scenario subsystem.

A *scenario* is the composition of three named, parameterized
ingredients:

* a **topology source** — builds a :class:`ChannelGraph` (synthetic
  generator or snapshot loader);
* a **workload generator** — builds a
  :class:`~repro.traces.workload.Workload` over the topology's nodes;
* an optional **dynamics model** — builds a stream of
  :class:`~repro.network.dynamics.ChannelEvent` churn events that the
  runner interleaves with the workload by timestamp;
* an optional **fault model** — builds a typed
  :class:`~repro.sim.faults.FaultSpec` that the factory compiles against
  the built graph into an adversarial event stream plus the attack
  windows the resilience metrics need (see :mod:`repro.sim.faults`).

Each ingredient is registered by name with a typed
:class:`ParamSpec` list, so the CLI can list, describe, and override
parameters without importing experiment code, and every future
experiment is a one-line :func:`register_scenario` call.

Entry points
------------
:func:`register_topology`, :func:`register_workload`,
:func:`register_dynamics`
    Register an ingredient builder under a name.
:func:`register_scenario`
    Compose registered ingredients into a named scenario.
:func:`get_scenario`, :func:`scenario_names`, :func:`iter_scenarios`
    Look scenarios up; :meth:`Scenario.factory` turns one into the
    :data:`~repro.sim.runner.ScenarioFactory` the runner consumes.

The built-in catalog lives in :mod:`repro.scenarios.catalog` and is
loaded by ``import repro.scenarios``.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.network.dynamics import ChannelEvent
from repro.network.graph import ChannelGraph
from repro.traces.workload import Workload


class ScenarioError(ReproError):
    """An unknown name, bad parameter, or invalid registration."""


@dataclass(frozen=True)
class ParamSpec:
    """One typed, documented parameter of a registered builder.

    ``kind`` is the coercion target (``int``/``float``/``str``/``bool``);
    CLI ``--set key=value`` overrides are coerced through it, so builders
    always receive well-typed values.
    """

    name: str
    kind: type
    default: object
    help: str = ""

    def coerce(self, value: object) -> object:
        """Coerce ``value`` (possibly a CLI string) to this spec's type."""
        if isinstance(value, self.kind):
            return value
        try:
            if self.kind is bool:
                if isinstance(value, str):
                    lowered = value.strip().lower()
                    if lowered in ("1", "true", "yes", "on"):
                        return True
                    if lowered in ("0", "false", "no", "off"):
                        return False
                    raise ValueError(value)
                return bool(value)
            return self.kind(value)
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"parameter {self.name!r} expects {self.kind.__name__}, "
                f"got {value!r}"
            ) from exc


@dataclass(frozen=True)
class RegistryEntry:
    """A named builder plus its parameter specs and description."""

    name: str
    description: str
    builder: Callable
    params: tuple[ParamSpec, ...] = ()

    def bind(self, overrides: Mapping[str, object] | None = None) -> dict:
        """Defaults merged with coerced ``overrides``.

        Unknown override keys raise :class:`ScenarioError` — scenario
        definitions fail loudly instead of silently ignoring a typo.
        """
        bound = {spec.name: spec.default for spec in self.params}
        if overrides:
            specs = {spec.name: spec for spec in self.params}
            for key, value in overrides.items():
                if key not in specs:
                    known = ", ".join(sorted(specs)) or "(none)"
                    raise ScenarioError(
                        f"{self.name!r} has no parameter {key!r} "
                        f"(known: {known})"
                    )
                bound[key] = specs[key].coerce(value)
        return bound


class Registry:
    """A name -> :class:`RegistryEntry` table for one ingredient kind."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self,
        name: str,
        builder: Callable,
        description: str,
        params: Sequence[ParamSpec] = (),
    ) -> RegistryEntry:
        """Register ``builder`` under ``name``; duplicate names raise."""
        if name in self._entries:
            raise ScenarioError(f"{self.kind} {name!r} already registered")
        if not description:
            raise ScenarioError(f"{self.kind} {name!r} needs a description")
        entry = RegistryEntry(
            name=name,
            description=description,
            builder=builder,
            params=tuple(params),
        )
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> RegistryEntry:
        """The entry for ``name``; unknown names raise :class:`ScenarioError`."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise ScenarioError(
                f"unknown {self.kind} {name!r} (known: {known})"
            ) from None

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: The four ingredient registries.  Builder signatures:
#: topology ``(rng, **params) -> ChannelGraph``;
#: workload ``(rng, nodes, **params) -> Workload``;
#: dynamics ``(rng, graph, duration_seconds, **params) -> list[ChannelEvent]``;
#: fault ``(**params) -> FaultSpec`` (pure — compiled against the built
#: graph inside the scenario factory).
TOPOLOGIES = Registry("topology")
WORKLOADS = Registry("workload")
DYNAMICS = Registry("dynamics")
FAULTS = Registry("fault")


def register_topology(
    name: str,
    builder: Callable[..., ChannelGraph],
    description: str,
    params: Sequence[ParamSpec] = (),
) -> RegistryEntry:
    """Register a topology source: ``builder(rng, **params) -> ChannelGraph``."""
    return TOPOLOGIES.register(name, builder, description, params)


def register_workload(
    name: str,
    builder: Callable[..., Workload],
    description: str,
    params: Sequence[ParamSpec] = (),
) -> RegistryEntry:
    """Register a workload generator: ``builder(rng, nodes, **params) -> Workload``."""
    return WORKLOADS.register(name, builder, description, params)


def register_dynamics(
    name: str,
    builder: Callable[..., list[ChannelEvent]],
    description: str,
    params: Sequence[ParamSpec] = (),
) -> RegistryEntry:
    """Register a dynamics model: ``builder(rng, graph, duration_seconds, **params)``."""
    return DYNAMICS.register(name, builder, description, params)


def register_fault(
    name: str,
    builder: Callable,
    description: str,
    params: Sequence[ParamSpec] = (),
) -> RegistryEntry:
    """Register a fault model: ``builder(**params) -> FaultSpec``.

    The builder is pure spec construction (its ``__post_init__``
    validates ranges eagerly); the scenario factory compiles the spec
    against the built graph via :func:`repro.sim.faults.compile_faults`.
    """
    return FAULTS.register(name, builder, description, params)


@dataclass(frozen=True)
class EvalMatrix:
    """A scenario's default evaluation matrix for ``repro report``.

    ``report=True`` opts the scenario into the headline comparison that
    :mod:`repro.eval.report` generates (Flash vs the four baselines);
    ``runs``/``transactions`` are the full-report defaults and the
    ``smoke_*`` pair the reduced CI drift-check configuration.
    ``smoke=True`` additionally includes the scenario in
    ``repro report --smoke`` (keep that set small and deterministic —
    its tables are golden-checked in CI).
    """

    report: bool = False
    runs: int = 3
    transactions: int = 250
    smoke: bool = False
    smoke_runs: int = 2
    smoke_transactions: int = 30

    def config(self, smoke: bool) -> tuple[int, int]:
        """The ``(runs, transactions)`` pair for full or smoke mode."""
        if smoke:
            return self.smoke_runs, self.smoke_transactions
        return self.runs, self.transactions


@dataclass(frozen=True)
class Scenario:
    """A named (topology x workload x dynamics) composition.

    ``figure`` names the paper figure the scenario reproduces (empty for
    scenarios that go beyond the paper).  Parameter dicts here are the
    *scenario-level* defaults layered over each ingredient's own
    defaults; :meth:`factory` layers per-call overrides on top of both.
    ``eval_matrix`` carries the scenario's default evaluation
    configuration for the report generator (see :class:`EvalMatrix`).

    ``engine`` selects the scenario's default simulation engine
    (``"sequential"`` or ``"concurrent"``); ``engine_params`` are its
    default :class:`~repro.sim.concurrent.ConcurrencyConfig` knobs.
    The runner and CLI pick both up automatically for registered names
    and let callers override them (see
    :func:`repro.sim.runner.resolve_engine`).

    ``faults`` names a registered fault model (:data:`FAULTS`) whose
    compiled plan the factory attaches to every build — the scenario
    then runs under adversarial load and its results carry the
    resilience metric family (:mod:`repro.sim.faults`).
    """

    name: str
    description: str
    topology: str
    workload: str
    dynamics: str | None = None
    topology_params: Mapping[str, object] = field(default_factory=dict)
    workload_params: Mapping[str, object] = field(default_factory=dict)
    dynamics_params: Mapping[str, object] = field(default_factory=dict)
    figure: str = ""
    eval_matrix: EvalMatrix = field(default_factory=EvalMatrix)
    engine: str = "sequential"
    engine_params: Mapping[str, object] = field(default_factory=dict)
    faults: str | None = None
    fault_params: Mapping[str, object] = field(default_factory=dict)
    mpp_params: Mapping[str, object] | None = None

    def ingredients(self) -> str:
        """``topology x workload [+ dynamics] [! faults] [@ engine]`` summary."""
        parts = f"{self.topology} x {self.workload}"
        if self.dynamics:
            parts += f" + {self.dynamics}"
        if self.faults:
            parts += f" ! {self.faults}"
        if self.engine != "sequential":
            parts += f" @ {self.engine}"
        if self.mpp_params is not None:
            parts += " / mpp"
        return parts

    def factory(
        self,
        topology_overrides: Mapping[str, object] | None = None,
        workload_overrides: Mapping[str, object] | None = None,
        dynamics_overrides: Mapping[str, object] | None = None,
        fault_overrides: Mapping[str, object] | None = None,
    ):
        """A seeded builder the runner consumes.

        Returns a callable ``(random.Random) -> (graph, workload)`` — or
        ``(graph, workload, events)`` when the scenario has a dynamics
        model, or ``(graph, workload, events, fault_plan)`` when it has
        a fault model (``events`` then may be empty);
        :func:`repro.sim.runner.run_comparison` accepts every shape.
        Overrides are validated against each ingredient's
        :class:`ParamSpec` list at call time, so a bad override fails
        before any run starts.
        """
        topology_entry = TOPOLOGIES.get(self.topology)
        workload_entry = WORKLOADS.get(self.workload)
        dynamics_entry = DYNAMICS.get(self.dynamics) if self.dynamics else None
        fault_entry = FAULTS.get(self.faults) if self.faults else None
        if dynamics_entry is None and dynamics_overrides:
            raise ScenarioError(
                f"scenario {self.name!r} has no dynamics ingredient; "
                f"dynamics overrides {sorted(dynamics_overrides)} have "
                "no effect"
            )
        if fault_entry is None and fault_overrides:
            raise ScenarioError(
                f"scenario {self.name!r} has no fault ingredient; "
                f"fault overrides {sorted(fault_overrides)} have no effect"
            )

        topology_kwargs = topology_entry.bind(
            {**self.topology_params, **(topology_overrides or {})}
        )
        workload_kwargs = workload_entry.bind(
            {**self.workload_params, **(workload_overrides or {})}
        )
        dynamics_kwargs = (
            dynamics_entry.bind(
                {**self.dynamics_params, **(dynamics_overrides or {})}
            )
            if dynamics_entry
            else {}
        )
        fault_spec = None
        if fault_entry is not None:
            bound = fault_entry.bind(
                {**self.fault_params, **(fault_overrides or {})}
            )
            try:
                fault_spec = fault_entry.builder(**bound)
            except ValueError as exc:
                raise ScenarioError(
                    f"scenario {self.name!r} has bad fault parameters: {exc}"
                ) from exc

        def build(rng: random.Random):
            graph = topology_entry.builder(rng, **topology_kwargs)
            workload = workload_entry.builder(rng, graph.nodes, **workload_kwargs)
            if dynamics_entry is None and fault_spec is None:
                return graph, workload
            horizon = (
                workload[len(workload) - 1].time if len(workload) else 0.0
            )
            events = (
                dynamics_entry.builder(rng, graph, horizon, **dynamics_kwargs)
                if dynamics_entry is not None
                else []
            )
            if fault_spec is None:
                return graph, workload, events
            # The fault plan compiles after graph/workload/churn so the
            # extra rng draws cannot perturb a fault-free build.
            from repro.sim.faults import compile_faults

            plan = compile_faults(fault_spec, graph, rng, horizon)
            return graph, workload, events, plan

        return build


#: Name -> :class:`Scenario` catalog (populated by ``catalog.py`` and
#: user code via :func:`register_scenario`).
SCENARIOS: dict[str, Scenario] = {}


def register_scenario(
    name: str,
    description: str,
    topology: str,
    workload: str,
    dynamics: str | None = None,
    topology_params: Mapping[str, object] | None = None,
    workload_params: Mapping[str, object] | None = None,
    dynamics_params: Mapping[str, object] | None = None,
    figure: str = "",
    eval_matrix: EvalMatrix | None = None,
    engine: str = "sequential",
    engine_params: Mapping[str, object] | None = None,
    faults: str | None = None,
    fault_params: Mapping[str, object] | None = None,
    mpp_params: Mapping[str, object] | None = None,
) -> Scenario:
    """Compose registered ingredients into a named scenario.

    All ingredient names, scenario-level parameter defaults, engine
    knobs, fault parameters, and MPP knobs are validated eagerly (a typo
    fails at registration, not first run).  Returns the
    :class:`Scenario` for convenience.

    ``mpp_params`` (a mapping, possibly empty for all defaults) turns
    multi-part payments on for the scenario; ``None`` (the default)
    keeps it off, so existing scenarios and their store digests are
    untouched.
    """
    if name in SCENARIOS:
        raise ScenarioError(f"scenario {name!r} already registered")
    if not description:
        raise ScenarioError(f"scenario {name!r} needs a description")
    if dynamics is None and dynamics_params:
        raise ScenarioError(
            f"scenario {name!r} sets dynamics_params "
            f"{sorted(dynamics_params)} but no dynamics ingredient"
        )
    if faults is None and fault_params:
        raise ScenarioError(
            f"scenario {name!r} sets fault_params "
            f"{sorted(fault_params)} but no fault ingredient"
        )
    if eval_matrix is not None and eval_matrix.smoke and not eval_matrix.report:
        raise ScenarioError(
            f"scenario {name!r} marks smoke=True without report=True"
        )
    if engine not in ("sequential", "concurrent"):
        raise ScenarioError(
            f"scenario {name!r} names unknown engine {engine!r} "
            "(known: sequential, concurrent)"
        )
    if engine == "sequential" and engine_params:
        raise ScenarioError(
            f"scenario {name!r} sets engine_params "
            f"{sorted(engine_params)} but engine='sequential'"
        )
    if engine == "concurrent":
        # Validate knob names and ranges eagerly via the config's own
        # coercion (imported lazily: repro.sim pulls no scenario code).
        from repro.sim.concurrent import ConcurrencyConfig

        try:
            ConcurrencyConfig.from_params(engine_params)
        except ValueError as exc:
            raise ScenarioError(
                f"scenario {name!r} has bad engine_params: {exc}"
            ) from exc
    if mpp_params is not None:
        # Same eager-coercion treatment as engine_params (lazy import
        # for the same reason: repro.sim pulls no scenario code).
        from repro.sim.mpp import MppConfig

        try:
            MppConfig.from_params(mpp_params)
        except ValueError as exc:
            raise ScenarioError(
                f"scenario {name!r} has bad mpp_params: {exc}"
            ) from exc
    scenario = Scenario(
        name=name,
        description=description,
        topology=topology,
        workload=workload,
        dynamics=dynamics,
        topology_params=dict(topology_params or {}),
        workload_params=dict(workload_params or {}),
        dynamics_params=dict(dynamics_params or {}),
        figure=figure,
        eval_matrix=eval_matrix or EvalMatrix(),
        engine=engine,
        engine_params=dict(engine_params or {}),
        faults=faults,
        fault_params=dict(fault_params or {}),
        mpp_params=dict(mpp_params) if mpp_params is not None else None,
    )
    # Eager validation: ingredient lookup + parameter binding both raise
    # ScenarioError on any mismatch.
    TOPOLOGIES.get(topology).bind(scenario.topology_params)
    WORKLOADS.get(workload).bind(scenario.workload_params)
    if dynamics is not None:
        DYNAMICS.get(dynamics).bind(scenario.dynamics_params)
    if faults is not None:
        entry = FAULTS.get(faults)
        bound = entry.bind(scenario.fault_params)
        try:
            # Constructing the spec runs its __post_init__ range checks.
            entry.builder(**bound)
        except ValueError as exc:
            raise ScenarioError(
                f"scenario {name!r} has bad fault_params: {exc}"
            ) from exc
    SCENARIOS[name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """The registered :class:`Scenario`; unknown names raise with the catalog."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS)) or "(none)"
        raise ScenarioError(
            f"unknown scenario {name!r} (known: {known})"
        ) from None


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(SCENARIOS)


def iter_scenarios() -> Iterator[Scenario]:
    """Registered scenarios in name order."""
    for name in scenario_names():
        yield SCENARIOS[name]


def report_scenarios(smoke: bool = False) -> list[Scenario]:
    """Scenarios opted into the headline report matrix, in name order.

    ``smoke=True`` restricts to the deterministic smoke subset whose
    tables are golden-checked in CI.
    """
    return [
        scenario
        for scenario in iter_scenarios()
        if scenario.eval_matrix.report
        and (scenario.eval_matrix.smoke or not smoke)
    ]
