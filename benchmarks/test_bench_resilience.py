"""Resilience benchmark: scheme rankings under the four attack families.

Runs every registered attack scenario (jam-hubs, hub-kill-xl,
liquidity-drain-storm, partition-heal-wave — one per fault model, each
on its registered engine) across the four paper schemes and >= 3 seeds
at benchmark scale, then asserts the qualitative resilience claims:

* jamming is the only attack that captures adversary escrow, and it
  captures it against every scheme;
* hub kills are permanent — no recovery half-life is measured;
* the partition window visibly degrades success (positive resilience
  delta) and the network recovers after the heal;
* Flash stays at least as successful under jamming as Shortest Path
  (the paper's ranking, extended to adversarial load).

Writes machine-readable ``BENCH_resilience.json`` at the repo root
(canonical serialization, like ``BENCH_churn.json``); methodology in
``docs/RESILIENCE.md``.  Set ``BENCH_SMOKE=1`` for the CI-scale
version — same scenarios and assertions on smaller topologies.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

from _common import save_result

import repro.scenarios as scenarios
from repro.sim.factories import paper_benchmark_factories
from repro.sim.metrics import RESILIENCE_METRIC_FIELDS
from repro.sim.runner import run_comparison

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

N_NODES = 300 if SMOKE else 2_000
N_TRANSACTIONS = 120 if SMOKE else 400
SEEDS = 3
BASE_SEED = 20_260_808

BENCH_JSON = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
)

#: One registered scenario per fault model, in report order.
ATTACKS = (
    "jam-hubs",
    "hub-kill-xl",
    "liquidity-drain-storm",
    "partition-heal-wave",
)


def _bench_factory(scenario):
    """The scenario's seeded builder at benchmark scale."""
    topo_entry = scenarios.TOPOLOGIES.get(scenario.topology)
    topology_overrides = {}
    if any(spec.name == "nodes" for spec in topo_entry.params):
        topology_overrides["nodes"] = N_NODES
    return scenario.factory(
        topology_overrides=topology_overrides,
        workload_overrides={"transactions": N_TRANSACTIONS},
    )


def _run_attacks() -> dict[str, dict[str, dict[str, float]]]:
    """scenario -> scheme -> averaged resilience metrics (+ success)."""
    results: dict[str, dict[str, dict[str, float]]] = {}
    for name in ATTACKS:
        scenario = scenarios.get_scenario(name)
        comparison = run_comparison(
            _bench_factory(scenario),
            paper_benchmark_factories(),
            runs=SEEDS,
            base_seed=BASE_SEED,
            engine=scenario.engine,
            engine_params=scenario.engine_params,
        )
        results[name] = {
            scheme: {
                "success_ratio": metrics.success_ratio,
                **{
                    field: getattr(metrics, field)
                    for field in RESILIENCE_METRIC_FIELDS
                },
            }
            for scheme, metrics in comparison.metrics.items()
        }
    return results


def test_bench_resilience():
    results = _run_attacks()

    # Sanity: every ratio is a probability, escrow is non-negative.
    for name, by_scheme in results.items():
        for scheme, metrics in by_scheme.items():
            assert 0.0 <= metrics["attack_success_ratio"] <= 1.0, (name, scheme)
            assert 0.0 <= metrics["control_success_ratio"] <= 1.0, (name, scheme)
            assert metrics["adversary_escrow"] >= 0.0, (name, scheme)
            assert metrics["recovery_half_life"] >= 0.0, (name, scheme)

    # Jamming, and only jamming, captures adversary escrow — against
    # every scheme (the attack holds victim capacity, whoever routes).
    for scheme, metrics in results["jam-hubs"].items():
        assert metrics["adversary_escrow"] > 0.0, scheme
    for name in ("hub-kill-xl", "liquidity-drain-storm", "partition-heal-wave"):
        for scheme, metrics in results[name].items():
            assert metrics["adversary_escrow"] == 0.0, (name, scheme)

    # Hub kills are permanent: no heal, so no recovery is measured.
    for scheme, metrics in results["hub-kill-xl"].items():
        assert metrics["recovery_half_life"] == 0.0, scheme

    # The partition window visibly degrades success for Flash, and the
    # network is measurably healable afterwards.
    partition_flash = results["partition-heal-wave"]["Flash"]
    assert partition_flash["resilience_delta"] > 0.0, partition_flash

    # Paper ranking under adversarial load: Flash is at least as
    # successful under jamming as Shortest Path.
    jam = results["jam-hubs"]
    assert (
        jam["Flash"]["attack_success_ratio"]
        >= jam["Shortest Path"]["attack_success_ratio"]
    ), jam

    report = {
        "benchmark": "resilience_attack_rankings",
        "smoke": SMOKE,
        "nodes": N_NODES,
        "transactions": N_TRANSACTIONS,
        "seeds": SEEDS,
        "base_seed": BASE_SEED,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "attacks": {
            name: {
                "fault": scenarios.get_scenario(name).faults,
                "engine": scenarios.get_scenario(name).engine,
                "schemes": by_scheme,
            }
            for name, by_scheme in results.items()
        },
        "claims_checked": [
            "jamming_captures_escrow_only",
            "hub_kill_has_no_recovery",
            "partition_delta_positive_flash",
            "flash_ge_shortest_path_under_jamming",
        ],
    }
    from repro.eval.store import CANONICAL_DIGITS, canonicalize

    BENCH_JSON.write_text(
        json.dumps(
            canonicalize(report, CANONICAL_DIGITS),
            indent=2,
            sort_keys=True,
            allow_nan=False,
        )
        + "\n"
    )

    lines = [
        f"scale: nodes<={N_NODES} txns={N_TRANSACTIONS} seeds={SEEDS}"
        + (" [SMOKE]" if SMOKE else "")
    ]
    for name, by_scheme in results.items():
        lines.append(f"-- {name} ({scenarios.get_scenario(name).faults})")
        for scheme, metrics in by_scheme.items():
            lines.append(
                f"   {scheme:<14} "
                f"atk={100 * metrics['attack_success_ratio']:5.1f}% "
                f"ctl={100 * metrics['control_success_ratio']:5.1f}% "
                f"delta={100 * metrics['resilience_delta']:+6.1f}pp "
                f"rhl={metrics['recovery_half_life']:7.0f}s "
                f"escrow={metrics['adversary_escrow']:.3g}"
            )
    save_result(
        "resilience", "Scheme resilience under adversarial faults", "\n".join(lines)
    )
