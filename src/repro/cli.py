"""Command-line interface: run experiments without writing a script.

Examples
--------
::

    python -m repro analyze                      # Fig 3/4 measurement study
    python -m repro simulate --topology ripple --transactions 300
    python -m repro testbed --nodes 50 --transactions 500
    python -m repro figure fig6 --topology lightning
    python -m repro figure fig10
    python -m repro figure ablation-k

``figure`` accepts: fig3, fig4, fig6, fig7, fig8, fig9, fig10, fig11,
fig12, fig13, ablation-k, ablation-order, ablation-paths.  All figures run
at benchmark scale by default; pass ``--paper-scale`` for the full-size
topologies (slow).
"""

from __future__ import annotations

import argparse
import random
import sys
from collections.abc import Sequence

from repro.eval import (
    BENCH_LIGHTNING,
    BENCH_RIPPLE,
    PAPER_LIGHTNING,
    PAPER_RIPPLE,
    ablation_k_sweep,
    ablation_mice_order,
    ablation_path_finding,
    fig3_size_cdfs,
    fig4_recurrence,
    fig6_capacity_sweep,
    fig7_load_sweep,
    fig8_probing_overhead,
    fig9_fee_optimization,
    fig10_threshold_sweep,
    fig11_mice_paths_sweep,
    testbed_figure,
)
from repro.eval.scenarios import ScenarioConfig, build_scenario
from repro.sim import format_table, paper_benchmark_factories, run_simulation


def _config(args) -> ScenarioConfig:
    if getattr(args, "paper_scale", False):
        base = PAPER_RIPPLE if args.topology == "ripple" else PAPER_LIGHTNING
    else:
        base = BENCH_RIPPLE if args.topology == "ripple" else BENCH_LIGHTNING
    if getattr(args, "transactions", None):
        base = base.with_transactions(args.transactions)
    return base


def _cmd_analyze(args) -> int:
    print(fig3_size_cdfs(n_samples=args.samples, seed=args.seed).format())
    print()
    print(
        fig4_recurrence(
            days=args.days,
            transactions_per_day=1_000,
            n_nodes=500,
            seed=args.seed,
        ).format()
    )
    return 0


def _cmd_simulate(args) -> int:
    config = _config(args).with_scale(args.scale)
    rng = random.Random(args.seed)
    graph, workload = build_scenario(config)(rng)
    print(
        f"topology={config.topology} nodes={graph.num_nodes()} "
        f"channels={graph.num_channels()} txns={len(workload)} "
        f"scale={args.scale}"
    )
    rows = []
    for name, factory in paper_benchmark_factories().items():
        result = run_simulation(
            graph, factory, workload, rng=random.Random(args.seed + 1)
        )
        rows.append(
            [
                name,
                f"{100 * result.success_ratio:.1f}",
                f"{result.success_volume:.4g}",
                result.probe_messages,
            ]
        )
    print(
        format_table(
            ["scheme", "succ. ratio (%)", "succ. volume", "probe msgs"], rows
        )
    )
    return 0


def _cmd_testbed(args) -> int:
    result = testbed_figure(
        n_nodes=args.nodes,
        intervals=((args.capacity_low, args.capacity_high),),
        n_transactions=args.transactions,
        seed=args.seed,
    )
    print(result.format())
    return 0


def _cmd_figure(args) -> int:
    config = _config(args)
    runs = args.runs
    seed = args.seed
    name = args.name.lower()
    if name == "fig3":
        print(fig3_size_cdfs(seed=seed).format())
    elif name == "fig4":
        print(fig4_recurrence(seed=seed).format())
    elif name == "fig6":
        print(fig6_capacity_sweep(config, runs=runs, seed=seed).format())
    elif name == "fig7":
        print(fig7_load_sweep(config, runs=runs, seed=seed).format())
    elif name == "fig8":
        print(fig8_probing_overhead(config, runs=runs, seed=seed).format())
    elif name == "fig9":
        print(fig9_fee_optimization(config, runs=runs, seed=seed).format())
    elif name == "fig10":
        print(fig10_threshold_sweep(config, runs=runs, seed=seed).format())
    elif name == "fig11":
        print(fig11_mice_paths_sweep(config, runs=runs, seed=seed).format())
    elif name == "fig12":
        print(
            testbed_figure(
                n_nodes=50, n_transactions=args.transactions or 2_000, seed=seed
            ).format()
        )
    elif name == "fig13":
        print(
            testbed_figure(
                n_nodes=100, n_transactions=args.transactions or 2_000, seed=seed
            ).format()
        )
    elif name == "ablation-k":
        print(ablation_k_sweep(config, runs=runs, seed=seed).format())
    elif name == "ablation-order":
        print(ablation_mice_order(config, runs=runs, seed=seed).format())
    elif name == "ablation-paths":
        print(ablation_path_finding(config, seed=seed).format())
    else:
        print(f"unknown figure {args.name!r}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flash (CoNEXT 2019) reproduction experiments",
    )
    parser.add_argument("--seed", type=int, default=0)
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser(
        "analyze", help="the §2.2 measurement study (Figs 3 & 4)"
    )
    analyze.add_argument("--samples", type=int, default=40_000)
    analyze.add_argument("--days", type=int, default=60)
    analyze.set_defaults(func=_cmd_analyze)

    simulate = subparsers.add_parser(
        "simulate", help="compare the four schemes on one scenario"
    )
    simulate.add_argument(
        "--topology", choices=("ripple", "lightning"), default="ripple"
    )
    simulate.add_argument("--transactions", type=int, default=None)
    simulate.add_argument("--scale", type=float, default=10.0)
    simulate.add_argument("--paper-scale", action="store_true")
    simulate.set_defaults(func=_cmd_simulate)

    testbed = subparsers.add_parser(
        "testbed", help="the §5 protocol testbed comparison"
    )
    testbed.add_argument("--nodes", type=int, default=50)
    testbed.add_argument("--transactions", type=int, default=1_000)
    testbed.add_argument("--capacity-low", type=float, default=1_000.0)
    testbed.add_argument("--capacity-high", type=float, default=1_500.0)
    testbed.set_defaults(func=_cmd_testbed)

    figure = subparsers.add_parser(
        "figure", help="regenerate one paper figure or ablation"
    )
    figure.add_argument("name")
    figure.add_argument(
        "--topology", choices=("ripple", "lightning"), default="ripple"
    )
    figure.add_argument("--transactions", type=int, default=None)
    figure.add_argument("--runs", type=int, default=2)
    figure.add_argument("--paper-scale", action="store_true")
    figure.set_defaults(func=_cmd_figure)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
