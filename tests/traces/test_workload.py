"""Unit tests for transactions and workloads."""

import pytest

from repro.traces.workload import Transaction, Workload, percentile


def make_workload(amounts):
    return Workload(
        [
            Transaction(txid=i, sender=0, receiver=1, amount=a, time=float(i))
            for i, a in enumerate(amounts)
        ]
    )


class TestTransaction:
    def test_fields(self):
        txn = Transaction(txid=1, sender="a", receiver="b", amount=5.0, time=2.0)
        assert txn.amount == 5.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Transaction(txid=0, sender="a", receiver="b", amount=-1.0)

    def test_self_payment_rejected(self):
        with pytest.raises(ValueError):
            Transaction(txid=0, sender="a", receiver="a", amount=1.0)

    def test_frozen(self):
        txn = Transaction(txid=0, sender="a", receiver="b", amount=1.0)
        with pytest.raises(AttributeError):
            txn.amount = 2.0


class TestWorkload:
    def test_total_volume(self):
        assert make_workload([1.0, 2.0, 3.0]).total_volume == 6.0

    def test_iteration_order(self):
        workload = make_workload([5.0, 1.0])
        assert [t.amount for t in workload] == [5.0, 1.0]

    def test_head(self):
        workload = make_workload([1.0, 2.0, 3.0])
        assert len(workload.head(2)) == 2

    def test_pairs(self):
        assert make_workload([1.0]).pairs() == {(0, 1)}


class TestThreshold:
    def test_default_split(self):
        workload = make_workload(list(range(1, 101)))
        threshold = workload.threshold_for_mice_fraction(0.9)
        mice = [t for t in workload if t.amount < threshold]
        assert abs(len(mice) - 90) <= 1

    def test_zero_fraction_all_elephants(self):
        workload = make_workload([1.0, 2.0, 3.0])
        threshold = workload.threshold_for_mice_fraction(0.0)
        assert all(t.amount >= threshold for t in workload)

    def test_one_fraction_all_mice(self):
        workload = make_workload([1.0, 2.0, 3.0])
        threshold = workload.threshold_for_mice_fraction(1.0)
        assert all(t.amount < threshold for t in workload)

    def test_empty_workload(self):
        assert Workload().threshold_for_mice_fraction(0.9) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_workload([1.0]).threshold_for_mice_fraction(1.5)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
