"""Tests for result table formatting."""

from repro.sim.results import format_number, format_series, format_table


class TestFormatNumber:
    def test_zero(self):
        assert format_number(0) == "0"

    def test_large_scientific(self):
        assert format_number(1_234_567.0) == "1.235e+06"

    def test_small_scientific(self):
        assert "e" in format_number(0.0001)

    def test_mid_range(self):
        assert format_number(0.91) == "0.910"

    def test_hundreds_with_separator(self):
        assert format_number(1234.5) == "1,234.5"


class TestFormatTable:
    def test_header_and_separator(self):
        table = format_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1].replace("  ", "")) == {"-"}
        assert len(lines) == 4

    def test_column_alignment(self):
        table = format_table(["name", "v"], [["long-name", 1]])
        lines = table.splitlines()
        assert len(lines[0]) == len(lines[1])


class TestFormatSeries:
    def test_one_row_per_scheme(self):
        text = format_series(
            "x", [1, 2], {"Flash": [0.5, 0.9], "SP": [0.1, 0.2]}, "ratio"
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "Flash" in lines[2]
        assert "SP" in lines[3]
