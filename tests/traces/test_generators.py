"""Tests for workload generators."""

import random

import pytest

from repro.traces.generators import (
    SECONDS_PER_DAY,
    generate_lightning_workload,
    generate_multiday_trace,
    generate_ripple_workload,
    generate_workload,
)
from repro.traces.distributions import ripple_size_distribution


NODES = list(range(50))


class TestGenerateWorkload:
    def test_length(self):
        workload = generate_ripple_workload(random.Random(0), NODES, 200)
        assert len(workload) == 200

    def test_times_monotone(self):
        workload = generate_ripple_workload(random.Random(0), NODES, 200)
        times = [t.time for t in workload]
        assert times == sorted(times)

    def test_txids_sequential(self):
        workload = generate_ripple_workload(random.Random(0), NODES, 50)
        assert [t.txid for t in workload] == list(range(50))

    def test_deterministic_given_seed(self):
        first = generate_ripple_workload(random.Random(5), NODES, 100)
        second = generate_ripple_workload(random.Random(5), NODES, 100)
        assert [t.amount for t in first] == [t.amount for t in second]

    def test_senders_within_population(self):
        workload = generate_ripple_workload(random.Random(0), NODES, 100)
        assert workload.senders() <= set(NODES)

    def test_lightning_sizes_are_satoshi_scale(self):
        workload = generate_lightning_workload(random.Random(0), NODES, 500)
        amounts = sorted(workload.amounts)
        median = amounts[len(amounts) // 2]
        assert median > 1e5  # satoshi scale, not USD scale

    def test_rate_controls_duration(self):
        workload = generate_workload(
            random.Random(0),
            NODES,
            1_000,
            ripple_size_distribution(),
            transactions_per_day=1_000.0,
        )
        assert workload[-1].time == pytest.approx(SECONDS_PER_DAY, rel=0.35)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_ripple_workload(random.Random(0), NODES, -1)


class TestMultidayTrace:
    def test_spans_days(self):
        trace = generate_multiday_trace(
            random.Random(0), NODES, days=5, transactions_per_day=100
        )
        assert len(trace) == 500
        assert trace[-1].time > 3 * SECONDS_PER_DAY

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            generate_multiday_trace(random.Random(0), NODES, days=0, transactions_per_day=10)
