"""The **sequential** trace-driven simulation engine (§4.1, "Setup").

Two engines share the router/metrics contract:

* **sequential** (this module, the default everywhere) — payments are
  fed to the router one at a time in workload order; each settles (or
  fails) instantaneously before the next starts, and ``Transaction.time``
  is ignored.  This is the paper's online model ("payments arrive at
  senders sequentially").
* **concurrent** (:mod:`repro.sim.concurrent`) — payments start at
  their workload time on a discrete-event queue, place HTLC-style holds
  along their paths, and settle or time out after per-hop latency, so
  overlapping payments contend for channel balance.  See
  ``docs/CONCURRENCY.md``.

Sequential-equivalence guarantee: selecting ``engine="sequential"``
anywhere (runner, CLI, report) routes through this unmodified function,
so its results — every per-transaction record and every stored metric —
are byte-identical to the engine as it existed before the concurrent
engine was added (``tests/sim/test_concurrent.py`` pins this against a
golden record).

The engine feeds each payment to a router operating over a
:class:`~repro.network.view.NetworkView` of a fresh copy of the
topology, and captures per-transaction records (success, fees, message
deltas) into a :class:`~repro.sim.metrics.SimulationResult`.  It also
tags every transaction elephant/mouse against a reference threshold so
results can be broken down by class even for routers (the baselines)
that do not themselves classify.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.core.base import Router
from repro.core.classifier import ReservoirThresholdEstimator
from repro.network.graph import ChannelGraph
from repro.network.view import NetworkView
from repro.sim.metrics import (
    SimulationResult,
    StreamingMetricsAccumulator,
    StreamingSimulationResult,
    TransactionRecord,
    fee_metrics,
    mpp_metrics,
)
from repro.sim.mpp import MppConfig, execute_parts_atomically, split_amounts
from repro.traces.workload import Transaction, Workload, WorkloadStream

RouterFactory = Callable[
    [NetworkView, "Workload | WorkloadStream", random.Random], Router
]


def accrue_revenue(graph, outcome, revenue_by_node: dict) -> None:
    """Fold one successful payment's per-node fees into the running sum.

    Shared by all engines (sequential, dynamic, concurrent) so
    ``hub_revenue`` means the same thing everywhere.
    """
    for path, amount in outcome.transfers:
        for node, earned in graph.path_fee_breakdown(
            list(path), amount
        ).items():
            revenue_by_node[node] = revenue_by_node.get(node, 0.0) + earned


def run_simulation(
    graph: ChannelGraph,
    router_factory: RouterFactory,
    workload: Workload | WorkloadStream,
    rng: random.Random | None = None,
    reference_mice_fraction: float = 0.9,
    copy_graph: bool = True,
    mpp: MppConfig | None = None,
) -> SimulationResult | StreamingSimulationResult:
    """Route ``workload`` over ``graph`` with a fresh router; returns metrics.

    ``copy_graph=True`` (default) leaves the input graph untouched so the
    same topology can be replayed across schemes — the paper compares all
    four schemes on identical initial balances.

    With ``mpp`` set, qualifying payments (at or above the resolved
    splitting threshold) fan out into parts that escrow independently
    and settle all-or-nothing through
    :func:`~repro.sim.mpp.execute_parts_atomically`; ``result.mpp``
    then carries :data:`~repro.sim.metrics.MPP_METRIC_FIELDS`.  With
    ``mpp=None`` (the default) this function is byte-identical to the
    pre-MPP engine — same code path, same records, same golden pin.

    A :class:`~repro.traces.workload.WorkloadStream` input switches to
    the single-pass path: per-transaction records flow into a
    :class:`~repro.sim.metrics.StreamingMetricsAccumulator` instead of a
    list, so memory stays O(1) in the trace length, and the elephant
    threshold comes from the stream's hint or an online reservoir
    estimate.  List-backed inputs take the identical code path as
    before streams existed.
    """
    working_graph = graph.copy() if copy_graph else graph
    run_rng = rng if rng is not None else random.Random(0)
    if mpp is None:
        view = NetworkView(working_graph)
        ledger = None
    else:
        # Deferred-settlement view: routers place holds that settle (or
        # refund) only when the whole multi-part payment resolves.
        from repro.sim.concurrent import ConcurrentNetworkView, HoldLedger

        mpp.validate()
        ledger = HoldLedger()
        view = ConcurrentNetworkView(working_graph, ledger)
    router = router_factory(view, workload, run_rng)
    policy_aware = working_graph.policy_aware
    revenue_by_node: dict = {}

    def route_one(
        transaction: Transaction,
        reference_threshold: float,
        mpp_threshold: float,
    ) -> TransactionRecord:
        probes_before = view.counters.probe_messages
        payments_before = view.counters.payment_messages
        if mpp is None:
            outcome = router.route(transaction)
            if policy_aware and outcome.success:
                accrue_revenue(working_graph, outcome, revenue_by_node)
            parts = 0
            partial_releases = 0
            success, fee = outcome.success, outcome.fee
            paths_used = len(outcome.transfers)
        else:
            amounts = split_amounts(
                mpp,
                transaction.amount,
                mpp_threshold,
                graph=working_graph,
                sender=transaction.sender,
            )
            outcome = execute_parts_atomically(
                working_graph,
                router,
                ledger,
                transaction,
                amounts,
                mpp.part_retries,
            )
            if policy_aware and outcome.success:
                for path, amount in outcome.transfers:
                    for node, earned in working_graph.path_fee_breakdown(
                        list(path), amount
                    ).items():
                        revenue_by_node[node] = (
                            revenue_by_node.get(node, 0.0) + earned
                        )
            parts = outcome.parts
            partial_releases = outcome.partial_releases
            success, fee = outcome.success, outcome.fee
            paths_used = len(outcome.transfers)
        return TransactionRecord(
            txid=transaction.txid,
            amount=transaction.amount,
            success=success,
            fee=fee,
            is_elephant=transaction.amount >= reference_threshold,
            probe_messages=view.counters.probe_messages - probes_before,
            payment_messages=view.counters.payment_messages
            - payments_before,
            paths_used=paths_used,
            parts=parts,
            partial_releases=partial_releases,
        )

    if isinstance(workload, WorkloadStream):
        accumulator = StreamingMetricsAccumulator(
            scheme=router.name,
            engine="sequential",
            track_fees=policy_aware,
            track_mpp=mpp is not None,
        )
        hint = workload.mice_threshold_hint
        estimator = (
            None
            if hint is not None
            else ReservoirThresholdEstimator(reference_mice_fraction)
        )
        fixed_mpp_threshold = (
            mpp.threshold if mpp is not None and mpp.threshold > 0 else None
        )
        threshold = hint if hint is not None else 0.0
        for transaction in workload:
            if estimator is not None:
                estimator.observe(transaction.amount)
                threshold = estimator.threshold
            accumulator.observe(
                route_one(
                    transaction,
                    threshold,
                    fixed_mpp_threshold
                    if fixed_mpp_threshold is not None
                    else threshold,
                )
            )
        return accumulator.result(
            revenue_by_node=revenue_by_node if policy_aware else None,
            mice_threshold=threshold,
        )

    reference_threshold = workload.threshold_for_mice_fraction(
        reference_mice_fraction
    )
    mpp_threshold = (
        mpp.threshold if mpp is not None and mpp.threshold > 0
        else reference_threshold
    )
    result = SimulationResult(scheme=router.name)
    for transaction in workload:
        result.records.append(
            route_one(transaction, reference_threshold, mpp_threshold)
        )
    if policy_aware:
        result.fees = fee_metrics(result.records, revenue_by_node)
    if mpp is not None:
        result.mpp = mpp_metrics(result.records)
    return result
