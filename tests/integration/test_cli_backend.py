"""Negative-path and smoke tests for kernel-backend selection.

The satellite contract: asking for the numpy backend on a box without
numpy must fail with a clear :class:`~repro.errors.ReproError` carrying
an install hint — never a raw ``ImportError`` traceback — and the CLI
must reject unknown backend names at the argparse layer (usage error,
exit code 2), before any simulation work starts.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.errors import BackendError, ReproError
from repro.network import compact


@pytest.fixture
def no_numpy(monkeypatch):
    """Pretend numpy is not installed (the probe cached a miss)."""
    monkeypatch.setattr(compact, "_numpy_module", None)
    monkeypatch.setattr(compact, "_default_backend", "python")


class TestMissingNumpy:
    def test_resolve_raises_repro_error(self, no_numpy):
        with pytest.raises(ReproError) as excinfo:
            compact.resolve_backend("numpy")
        assert not isinstance(excinfo.value, ImportError)
        assert "numpy" in str(excinfo.value)
        assert "pip install" in str(excinfo.value)

    def test_backend_error_is_repro_error(self):
        # Callers catching the package-wide base class see backend
        # failures too; nothing needs to special-case BackendError.
        assert issubclass(BackendError, ReproError)

    def test_constructor_raises_repro_error(self, no_numpy):
        with pytest.raises(ReproError):
            compact.CompactTopology.from_adjacency(
                {"a": ["b"], "b": ["a"]}, backend="numpy"
            )

    def test_set_default_raises_repro_error(self, no_numpy):
        with pytest.raises(ReproError):
            compact.set_default_backend("numpy")
        assert compact.get_default_backend() == "python"

    def test_numpy_available_reports_false(self, no_numpy):
        assert compact.numpy_available() is False

    def test_cli_run_reports_error_not_traceback(self, no_numpy, capsys):
        code = main(
            ["run", "ripple-default", "--runs", "1", "--backend", "numpy"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "pip install" in captured.err
        assert "Traceback" not in captured.err


class TestUnknownBackend:
    @pytest.mark.parametrize("command", ["run", "sweep", "report"])
    def test_argparse_rejects_unknown_choice(self, command, capsys):
        argv = {
            "run": ["run", "ripple-default", "--backend", "bogus"],
            "sweep": [
                "sweep", "ripple-default", "--axis", "engine.load",
                "--values", "1", "--backend", "bogus",
            ],
            "report": ["report", "--smoke", "--backend", "bogus"],
        }[command]
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert "invalid choice: 'bogus'" in capsys.readouterr().err

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ReproError, match="unknown backend"):
            compact.resolve_backend("bogus")
        with pytest.raises(ReproError, match="unknown backend"):
            compact.set_default_backend("bogus")


@pytest.mark.skipif(
    not compact.numpy_available(), reason="numpy is not installed"
)
class TestNumpySmoke:
    def test_cli_run_with_numpy_backend(self, capsys, monkeypatch):
        monkeypatch.setattr(compact, "_default_backend", "python")
        code = main(
            [
                "run", "ripple-default", "--runs", "1",
                "--transactions", "10", "--backend", "numpy",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Flash" in out
        # The flag mutated only this process's default, not the env.
        compact.set_default_backend("python")
