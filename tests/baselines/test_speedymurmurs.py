"""Tests for the SpeedyMurmurs baseline (embedding-based routing)."""

import random

import pytest

from repro.baselines.speedymurmurs import (
    SpeedyMurmursRouter,
    tree_coordinates,
    tree_distance,
)
from repro.network.view import NetworkView
from repro.traces.workload import Transaction


def txn(amount, sender=0, receiver=8, txid=0):
    return Transaction(txid=txid, sender=sender, receiver=receiver, amount=amount)


class TestEmbedding:
    def test_coordinates_cover_component(self, grid_graph):
        coords = tree_coordinates(grid_graph.adjacency(), 0)
        assert set(coords) == set(grid_graph.nodes)

    def test_root_coordinate(self, grid_graph):
        coords = tree_coordinates(grid_graph.adjacency(), 4)
        assert coords[4] == (4,)

    def test_coordinate_prefix_is_parent_chain(self, grid_graph):
        coords = tree_coordinates(grid_graph.adjacency(), 0)
        for node, coord in coords.items():
            assert coord[-1] == node
            assert coord[0] == 0

    def test_tree_distance_symmetric(self, grid_graph):
        coords = tree_coordinates(grid_graph.adjacency(), 0)
        assert tree_distance(coords[5], coords[7]) == tree_distance(
            coords[7], coords[5]
        )

    def test_tree_distance_identity(self, grid_graph):
        coords = tree_coordinates(grid_graph.adjacency(), 0)
        assert tree_distance(coords[5], coords[5]) == 0

    def test_tree_distance_counts_hops(self):
        a = ("r", "x", "y")
        b = ("r", "x", "z", "w")
        assert tree_distance(a, b) == 1 + 2


class TestRouter:
    def test_delivers_small_payment(self, grid_graph):
        router = SpeedyMurmursRouter(
            NetworkView(grid_graph), rng=random.Random(0)
        )
        outcome = router.route(txn(10.0))
        assert outcome.success
        assert outcome.delivered == 10.0

    def test_splits_across_trees(self, grid_graph):
        router = SpeedyMurmursRouter(
            NetworkView(grid_graph), num_landmarks=3, rng=random.Random(0)
        )
        outcome = router.route(txn(9.0))
        assert len(outcome.transfers) == 3
        assert sum(a for _, a in outcome.transfers) == pytest.approx(9.0)

    def test_transfers_are_valid_walks(self, grid_graph):
        adjacency = grid_graph.adjacency()
        router = SpeedyMurmursRouter(
            NetworkView(grid_graph), rng=random.Random(0)
        )
        outcome = router.route(txn(10.0))
        for path, _ in outcome.transfers:
            assert path[0] == 0 and path[-1] == 8
            for u, v in zip(path, path[1:]):
                assert v in adjacency[u]

    def test_static_no_probing(self, grid_graph):
        view = NetworkView(grid_graph)
        router = SpeedyMurmursRouter(view, rng=random.Random(0))
        router.route(txn(10.0))
        assert view.counters.probe_messages == 0

    def test_failure_atomic(self, grid_graph):
        view = NetworkView(grid_graph)
        router = SpeedyMurmursRouter(view, rng=random.Random(0))
        funds = grid_graph.network_funds()
        router.route(txn(10_000.0))
        assert grid_graph.network_funds() == pytest.approx(funds)

    def test_big_payment_fails(self, grid_graph):
        router = SpeedyMurmursRouter(
            NetworkView(grid_graph), rng=random.Random(0)
        )
        assert not router.route(txn(10_000.0)).success

    def test_validation(self, grid_graph):
        with pytest.raises(ValueError):
            SpeedyMurmursRouter(NetworkView(grid_graph), num_landmarks=0)
