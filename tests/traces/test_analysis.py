"""Tests for trace analysis (the Fig 3 / Fig 4 measurement machinery)."""

import pytest

from repro.traces.analysis import (
    SizeSummary,
    daily_windows,
    empirical_cdf,
    recurring_fraction_per_day,
    top_k_receiver_share_per_day,
    volume_share_of_top,
)
from repro.traces.generators import SECONDS_PER_DAY
from repro.traces.workload import Transaction, Workload


def txn(i, sender, receiver, amount=1.0, day=0, offset=0.0):
    return Transaction(
        txid=i,
        sender=sender,
        receiver=receiver,
        amount=amount,
        time=day * SECONDS_PER_DAY + offset,
    )


class TestCdf:
    def test_empty(self):
        assert empirical_cdf([]) == ([], [])

    def test_sorted_and_normalized(self):
        values, fractions = empirical_cdf([3.0, 1.0, 2.0])
        assert values == [1.0, 2.0, 3.0]
        assert fractions[-1] == pytest.approx(1.0)


class TestVolumeShare:
    def test_uniform_values(self):
        share = volume_share_of_top([1.0] * 10, 0.10)
        assert share == pytest.approx(0.10)

    def test_single_whale(self):
        share = volume_share_of_top([1.0] * 9 + [991.0], 0.10)
        assert share == pytest.approx(0.991)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            volume_share_of_top([1.0], 0.0)

    def test_summary(self):
        summary = SizeSummary.of([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.median == 3.0

    def test_empty_sample_summarizes_to_zeros(self):
        # Regression: used to raise "percentile of empty sequence".
        summary = SizeSummary.of([])
        assert summary == SizeSummary(
            count=0, median=0.0, p90=0.0, top_decile_volume_share=0.0
        )


class TestDailyWindows:
    def test_grouping(self):
        workload = Workload(
            [txn(0, "a", "b", day=0), txn(1, "a", "b", day=1), txn(2, "a", "c", day=1)]
        )
        windows = daily_windows(workload)
        assert len(windows[0]) == 1
        assert len(windows[1]) == 2


class TestRecurringFraction:
    def test_all_unique_pairs(self):
        workload = Workload([txn(0, "a", "b"), txn(1, "a", "c"), txn(2, "b", "c")])
        assert recurring_fraction_per_day(workload) == [0.0]

    def test_all_repeats(self):
        workload = Workload(
            [txn(i, "a", "b", offset=float(i)) for i in range(4)]
        )
        assert recurring_fraction_per_day(workload) == [0.75]

    def test_window_reset_across_days(self):
        # The same pair on different days does not count as recurring.
        workload = Workload([txn(0, "a", "b", day=0), txn(1, "a", "b", day=1)])
        assert recurring_fraction_per_day(workload) == [0.0, 0.0]


class TestTopKShare:
    def test_single_receiver_sender(self):
        workload = Workload(
            [txn(i, "a", "b", offset=float(i)) for i in range(10)]
        )
        assert top_k_receiver_share_per_day(workload, k=5) == [1.0]

    def test_many_receivers(self):
        # Sender pays 10 distinct receivers once each: top-5 share is 0.5.
        workload = Workload(
            [txn(i, "s", f"r{i}", offset=float(i)) for i in range(10)]
        )
        assert top_k_receiver_share_per_day(workload, k=5) == [0.5]
