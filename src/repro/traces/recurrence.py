"""The sender–receiver process: recurrent, clustered payment pairs.

§2.2 of the paper measures two structural properties of the Ripple trace:

* within a 24-hour window, a median of **86%** of transactions are
  *recurring* — their (sender, receiver) pair appeared earlier in the
  window; and
* an average user's **top-5** most frequent recurring receivers account for
  over **70%** of its daily transactions.

:class:`RecurrentPairSampler` is a generative model with those properties:
each sender owns a small Zipf-weighted contact list that it pays with
probability ``repeat_probability``, and otherwise picks a fresh uniform
receiver (ad-hoc payment).  Senders themselves are Zipf-distributed, so a
day contains many payments from the active senders — which is what makes
pairs recur inside a window.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.network.channel import NodeId


def zipf_weights(n: int, exponent: float) -> list[float]:
    """Normalized Zipf weights ``1/rank**exponent`` for ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class RecurrentPairSampler:
    """Draws (sender, receiver) pairs with recurrence and clustering.

    Parameters
    ----------
    nodes:
        Population to draw from (e.g. the topology's node list).
    contacts_per_sender:
        Size of each sender's personal contact list.
    contact_exponent:
        Zipf exponent over a sender's contacts; ~1.6 concentrates ≥70% of
        recurrent traffic on the top-5 contacts (Fig 4b).
    sender_exponent:
        Zipf exponent over the *active* senders; >0 concentrates sending
        activity so that pairs recur within a day (Fig 4a).
    active_sender_fraction:
        Fraction of the population that sends payments at all.  Real
        financial activity is dominated by a small set of businesses and
        exchanges; this is the main lever behind the paper's 86%
        within-day recurrence.
    repeat_probability:
        Probability a payment goes to the contact list rather than a fresh
        uniform receiver.
    """

    def __init__(
        self,
        nodes: Sequence[NodeId],
        rng: random.Random,
        contacts_per_sender: int = 8,
        contact_exponent: float = 1.2,
        sender_exponent: float = 1.1,
        active_sender_fraction: float = 0.03,
        repeat_probability: float = 0.92,
    ) -> None:
        if len(nodes) < 2:
            raise ValueError("need at least two nodes")
        if not 0.0 <= repeat_probability <= 1.0:
            raise ValueError("repeat_probability must be in [0, 1]")
        if not 0.0 < active_sender_fraction <= 1.0:
            raise ValueError("active_sender_fraction must be in (0, 1]")
        self._nodes = list(nodes)
        self._rng = rng
        self._contacts_per_sender = min(contacts_per_sender, len(nodes) - 1)
        self._contact_weights = zipf_weights(
            self._contacts_per_sender, contact_exponent
        )
        self._repeat_probability = repeat_probability
        # Only a small Zipf-weighted subset of nodes sends payments: a
        # handful of "businesses" originate most transactions, like real
        # financial activity.
        shuffled = list(self._nodes)
        rng.shuffle(shuffled)
        active = max(2, int(round(active_sender_fraction * len(shuffled))))
        self._senders = shuffled[:active]
        self._sender_weights = zipf_weights(len(self._senders), sender_exponent)
        self._contacts: dict[NodeId, list[NodeId]] = {}

    def _contacts_of(self, sender: NodeId) -> list[NodeId]:
        contacts = self._contacts.get(sender)
        if contacts is None:
            pool = [node for node in self._nodes if node != sender]
            contacts = self._rng.sample(
                pool, min(self._contacts_per_sender, len(pool))
            )
            self._contacts[sender] = contacts
        return contacts

    def sample_sender(self) -> NodeId:
        return self._rng.choices(self._senders, weights=self._sender_weights)[0]

    def sample_pair(self) -> tuple[NodeId, NodeId]:
        """One (sender, receiver) pair."""
        sender = self.sample_sender()
        contacts = self._contacts_of(sender)
        if self._rng.random() < self._repeat_probability and contacts:
            weights = self._contact_weights[: len(contacts)]
            receiver = self._rng.choices(contacts, weights=weights)[0]
        else:
            receiver = sender
            while receiver == sender:
                receiver = self._rng.choice(self._nodes)
        return sender, receiver

    def sample_pairs(self, n: int) -> list[tuple[NodeId, NodeId]]:
        return [self.sample_pair() for _ in range(n)]


def uniform_pairs(
    nodes: Sequence[NodeId], rng: random.Random, n: int
) -> list[tuple[NodeId, NodeId]]:
    """Ad-hoc baseline: uniformly random sender–receiver pairs."""
    if len(nodes) < 2:
        raise ValueError("need at least two nodes")
    pairs = []
    for _ in range(n):
        sender, receiver = rng.sample(list(nodes), 2)
        pairs.append((sender, receiver))
    return pairs
