"""Experiment drivers, persistent store, aggregation, and reporting.

One driver per paper figure (:mod:`repro.eval.experiments`), ablations
(:mod:`repro.eval.ablations`), the append-only experiment store that
makes sweeps resumable (:mod:`repro.eval.store`), seed aggregation
(:mod:`repro.eval.aggregate`), and the headline report generator behind
``repro report`` (:mod:`repro.eval.report`).
"""

from repro.eval.ablations import (
    KSweepResult,
    MiceOrderResult,
    PathFindingResult,
    ablation_k_sweep,
    ablation_mice_order,
    ablation_path_finding,
    exact_max_flow,
)
from repro.eval.experiments import (
    Fig3Result,
    Fig4Result,
    Fig8Result,
    Fig9Result,
    Fig10Result,
    Fig11Result,
    SweepResult,
    TestbedFigureResult,
    fig3_size_cdfs,
    fig4_recurrence,
    fig6_capacity_sweep,
    fig7_load_sweep,
    fig8_probing_overhead,
    fig9_fee_optimization,
    fig10_threshold_sweep,
    fig11_mice_paths_sweep,
    testbed_figure,
)
from repro.eval.aggregate import (
    MetricStats,
    pivot_markdown,
    pivot_metric,
    t_critical_95,
)
from repro.eval.report import (
    ReportArtifacts,
    check_golden,
    generate_report,
    report_factories,
)
from repro.eval.scenarios import (
    BENCH_LIGHTNING,
    BENCH_RIPPLE,
    PAPER_LIGHTNING,
    PAPER_RIPPLE,
    ScenarioConfig,
    build_scenario,
)
from repro.eval.store import (
    ExperimentStore,
    canonical_json,
    make_record,
    params_hash,
)

__all__ = [
    "BENCH_LIGHTNING",
    "BENCH_RIPPLE",
    "ExperimentStore",
    "MetricStats",
    "ReportArtifacts",
    "Fig10Result",
    "Fig11Result",
    "Fig3Result",
    "Fig4Result",
    "Fig8Result",
    "Fig9Result",
    "KSweepResult",
    "MiceOrderResult",
    "PAPER_LIGHTNING",
    "PAPER_RIPPLE",
    "PathFindingResult",
    "ScenarioConfig",
    "SweepResult",
    "TestbedFigureResult",
    "ablation_k_sweep",
    "ablation_mice_order",
    "ablation_path_finding",
    "build_scenario",
    "canonical_json",
    "check_golden",
    "exact_max_flow",
    "fig10_threshold_sweep",
    "fig11_mice_paths_sweep",
    "fig3_size_cdfs",
    "fig4_recurrence",
    "fig6_capacity_sweep",
    "fig7_load_sweep",
    "fig8_probing_overhead",
    "fig9_fee_optimization",
    "generate_report",
    "make_record",
    "params_hash",
    "pivot_markdown",
    "pivot_metric",
    "report_factories",
    "t_critical_95",
    "testbed_figure",
]
