"""Source-routing message format (Table 1 of the paper).

Every message carries the complete path (source routing), a transaction
id identifying the (partial) payment, collected channel capacities (for
probes), and the committed amount (for payments).  The wire encoding is
JSON — the prototype in the paper uses TCP with a similar self-describing
format; what matters for the reproduction is that the field set matches
Table 1:

    TransID  | A unique ID of a (partial) payment
    Type     | Message type
    Path     | Path of this message
    Capacity | Probed channel capacity
    Commit   | Committed amount of funds for this payment
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace

from repro.errors import ProtocolError
from repro.network.channel import NodeId


class MessageType(enum.Enum):
    """Protocol message types (§5.1)."""

    PROBE = "PROBE"
    PROBE_ACK = "PROBE_ACK"
    COMMIT = "COMMIT"
    COMMIT_ACK = "COMMIT_ACK"
    COMMIT_NACK = "COMMIT_NACK"
    CONFIRM = "CONFIRM"
    CONFIRM_ACK = "CONFIRM_ACK"
    REVERSE = "REVERSE"
    REVERSE_ACK = "REVERSE_ACK"


#: Message types that terminate a round at the sender.
SENDER_TERMINAL_TYPES = frozenset(
    {
        MessageType.PROBE_ACK,
        MessageType.COMMIT_ACK,
        MessageType.COMMIT_NACK,
        MessageType.CONFIRM_ACK,
        MessageType.REVERSE_ACK,
    }
)


@dataclass(frozen=True)
class Message:
    """One source-routed protocol message (Table 1).

    ``index`` is the cursor of the node currently holding the message
    within ``path``; forwarding increments it.  ``capacity`` accumulates
    per-hop ``(forward, reverse)`` balances during probing.
    """

    trans_id: str
    mtype: MessageType
    path: tuple[NodeId, ...]
    index: int = 0
    capacity: tuple[tuple[float, float], ...] = ()
    commit: float = 0.0
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise ProtocolError(f"empty path in {self.mtype}")
        if not 0 <= self.index < len(self.path):
            raise ProtocolError(
                f"index {self.index} outside path of length {len(self.path)}"
            )

    @property
    def current(self) -> NodeId:
        return self.path[self.index]

    @property
    def at_end(self) -> bool:
        return self.index == len(self.path) - 1

    @property
    def next_hop(self) -> NodeId:
        if self.at_end:
            raise ProtocolError("no next hop at the end of the path")
        return self.path[self.index + 1]

    def forwarded(self, **changes) -> "Message":
        """The same message advanced one hop (optionally with changes)."""
        return replace(self, index=self.index + 1, **changes)

    def reply(self, mtype: MessageType, **changes) -> "Message":
        """A response traveling the reverse of the remaining path."""
        reverse_path = tuple(reversed(self.path[: self.index + 1]))
        return replace(
            self, mtype=mtype, path=reverse_path, index=0, **changes
        )

    # ------------------------------------------------------------- encoding

    def encode(self) -> bytes:
        """Serialize to the JSON wire format."""
        return json.dumps(
            {
                "trans_id": self.trans_id,
                "type": self.mtype.value,
                "path": list(self.path),
                "index": self.index,
                "capacity": [list(pair) for pair in self.capacity],
                "commit": self.commit,
                "payload": self.payload,
            },
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "Message":
        """Parse a message from the JSON wire format."""
        try:
            data = json.loads(raw.decode("utf-8"))
            return cls(
                trans_id=data["trans_id"],
                mtype=MessageType(data["type"]),
                path=tuple(data["path"]),
                index=int(data["index"]),
                capacity=tuple(
                    (float(f), float(r)) for f, r in data["capacity"]
                ),
                commit=float(data["commit"]),
                payload=dict(data.get("payload", {})),
            )
        except (KeyError, ValueError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed message: {exc}") from exc


def sub_payment_id(txid: int, attempt: int) -> str:
    """Unique TransID for the ``attempt``-th partial payment of ``txid``."""
    return f"tx{txid}.{attempt}"
