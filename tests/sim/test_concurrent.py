"""Tests for the discrete-event concurrent payment engine.

Covers the concurrency model of docs/CONCURRENCY.md: in-flight holds
contend, timeouts release escrow, retries re-attempt, the engine is
deterministic per seed (including under fork parallelism), the
sequential engine is byte-identical to its pre-concurrent golden, and
the registered ``payment-storm`` scenario shows load-dependent
behaviour (the PR's acceptance criterion).
"""

import json
import random
import zlib
from pathlib import Path

import pytest

import repro.scenarios as scenarios
from repro.network.graph import ChannelGraph
from repro.sim import run_comparison
from repro.sim.concurrent import (
    ConcurrencyConfig,
    run_concurrent_simulation,
)
from repro.sim.engine import run_simulation
from repro.sim.factories import (
    flash_factory,
    paper_benchmark_factories,
    shortest_path_factory,
)
from repro.sim.metrics import CONCURRENT_METRIC_FIELDS, METRIC_FIELDS
from repro.traces.workload import Transaction, Workload

GOLDEN = Path(__file__).parent.parent / "golden" / "sequential_engine.json"


def line_graph(capacity: float = 100.0) -> ChannelGraph:
    graph = ChannelGraph()
    graph.add_channel("A", "B", capacity, capacity)
    graph.add_channel("B", "C", capacity, capacity)
    return graph


def payments(*specs) -> Workload:
    return Workload(
        [
            Transaction(
                txid=i, sender=s, receiver=r, amount=amount, time=time
            )
            for i, (s, r, amount, time) in enumerate(specs)
        ]
    )


class TestConcurrencyConfig:
    def test_defaults_validate(self):
        ConcurrencyConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hop_latency": -0.1},
            {"timeout": 0.0},
            {"load": 0.0},
            {"max_retries": -1},
            {"retry_delay": -1.0},
            {"gossip_period": 0.0},
            {"retry_backoff": 0.5},
            {"retry_jitter": -0.1},
            {"retry_jitter": 1.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ConcurrencyConfig(**kwargs).validate()

    def test_from_params_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown concurrency parameter"):
            ConcurrencyConfig.from_params({"lod": 10})

    def test_from_params_coerces_cli_strings(self):
        config = ConcurrencyConfig.from_params(
            {"load": "50", "max_retries": "3"}
        )
        assert config.load == 50.0
        assert config.max_retries == 3

    def test_to_params_round_trips_fully_resolved(self):
        config = ConcurrencyConfig(load=7.0)
        params = config.to_params()
        assert params["load"] == 7.0
        assert params["timeout"] == ConcurrencyConfig().timeout
        assert ConcurrencyConfig.from_params(params) == config


class TestRetryBackoff:
    """Opt-in exponential backoff + seeded jitter (docs/CONCURRENCY.md)."""

    def test_to_params_omits_backoff_knobs_at_defaults(self):
        # Pre-backoff store cells must keep their digests: the default
        # knob values may not appear in the cell-key representation.
        params = ConcurrencyConfig(load=7.0).to_params()
        assert set(params) == {
            "hop_latency",
            "timeout",
            "load",
            "max_retries",
            "retry_delay",
            "gossip_period",
        }

    def test_to_params_round_trips_non_default_knobs(self):
        config = ConcurrencyConfig(retry_backoff=2.0, retry_jitter=0.25)
        params = config.to_params()
        assert params["retry_backoff"] == 2.0
        assert params["retry_jitter"] == 0.25
        assert ConcurrencyConfig.from_params(params) == config

    def freeing_contention(self):
        # One channel, 20/180: txn0 (B->A 100) settles at t=2 and *adds*
        # 100 to the A->B direction; txn1 (A->B 50) cannot reserve until
        # that settle lands, so only a retry scheduled past t=2 succeeds.
        graph = ChannelGraph()
        graph.add_channel("A", "B", 20.0, 180.0)
        workload = payments(
            ("B", "A", 100.0, 0.0),
            ("A", "B", 50.0, 0.5),
        )
        return graph, workload

    def run_with(self, **knobs):
        graph, workload = self.freeing_contention()
        return run_concurrent_simulation(
            graph,
            shortest_path_factory(),
            workload,
            rng=random.Random(0),
            config=ConcurrencyConfig(
                hop_latency=1.0,
                timeout=5.0,
                max_retries=2,
                retry_delay=0.4,
                **knobs,
            ),
        )

    def test_fixed_delay_retries_exhaust_before_capacity_frees(self):
        # Baseline: retries at t=0.9 and t=1.3 both precede the t=2
        # settle, so the payment fails for lack of capacity.
        result = self.run_with()
        assert [r.success for r in result.records] == [True, False]

    def test_backoff_stretches_the_second_retry_past_the_settle(self):
        # backoff=4: same first retry (t=0.9), second at t=2.5 > 2.
        result = self.run_with(retry_backoff=4.0)
        assert [r.success for r in result.records] == [True, True]

    def test_jitter_is_deterministic_per_seed(self):
        results = [
            self.run_with(retry_jitter=0.5, retry_backoff=2.0)
            for _ in range(2)
        ]
        assert results[0].records == results[1].records
        assert results[0].retries_total > 0


class TestContention:
    def test_overlapping_payments_contend_for_holds(self):
        # txn 1 starts while txn 0's 80 is escrowed on A->B (settles at
        # t=4): only one fits; txn 2 starts after settle but the channel
        # is then genuinely depleted (20 left), so it fails too.
        workload = payments(
            ("A", "C", 80.0, 0.0),
            ("A", "C", 80.0, 1.0),
            ("A", "C", 80.0, 50.0),
        )
        result = run_concurrent_simulation(
            line_graph(),
            shortest_path_factory(),
            workload,
            rng=random.Random(0),
            config=ConcurrencyConfig(hop_latency=1.0, max_retries=0),
        )
        assert [r.success for r in result.records] == [True, False, False]
        assert result.records[0].latency == pytest.approx(4.0)

    def test_sequentially_spaced_payments_do_not_contend(self):
        # Same payments far enough apart that each settles before the
        # next starts: the first succeeds, later ones hit depletion
        # exactly as the sequential engine would.
        workload = payments(
            ("A", "C", 80.0, 0.0),
            ("C", "A", 80.0, 100.0),
            ("A", "C", 80.0, 200.0),
        )
        result = run_concurrent_simulation(
            line_graph(),
            shortest_path_factory(),
            workload,
            rng=random.Random(0),
            config=ConcurrencyConfig(hop_latency=1.0, max_retries=0),
        )
        assert [r.success for r in result.records] == [True, True, True]

    def test_no_escrow_leaks_and_funds_conserved(self):
        graph = line_graph()
        funds_before = graph.network_funds()
        workload = payments(
            ("A", "C", 80.0, 0.0),
            ("A", "C", 80.0, 1.0),
            ("C", "A", 30.0, 2.0),
        )
        result = run_concurrent_simulation(
            graph,
            shortest_path_factory(),
            workload,
            rng=random.Random(0),
            config=ConcurrencyConfig(hop_latency=1.0, max_retries=1),
            copy_graph=False,
        )
        assert graph.total_held() == 0.0
        assert graph.network_funds() == pytest.approx(funds_before)
        assert result.transactions == 3


class TestTimeout:
    def test_long_path_times_out_and_releases_holds(self):
        graph = line_graph()
        workload = payments(("A", "C", 80.0, 0.0))
        # 2 hops * 2 * 1 s/hop = 4 s settle delay > 3 s timeout.
        result = run_concurrent_simulation(
            graph,
            shortest_path_factory(),
            workload,
            rng=random.Random(0),
            config=ConcurrencyConfig(
                hop_latency=1.0, timeout=3.0, max_retries=0
            ),
            copy_graph=False,
        )
        record = result.records[0]
        assert not record.success
        assert record.timed_out
        assert record.latency == pytest.approx(3.0)
        assert result.timeout_failures == 1
        # Escrow fully released: balances back to their deposits.
        assert graph.total_held() == 0.0
        assert graph.balance("A", "B") == pytest.approx(100.0)
        assert graph.balance("B", "C") == pytest.approx(100.0)

    def test_within_timeout_settles(self):
        result = run_concurrent_simulation(
            line_graph(),
            shortest_path_factory(),
            payments(("A", "C", 80.0, 0.0)),
            rng=random.Random(0),
            config=ConcurrencyConfig(
                hop_latency=1.0, timeout=4.0, max_retries=0
            ),
        )
        assert result.records[0].success
        assert result.timeout_failures == 0


class TestRetries:
    def test_retry_counts_and_waits_on_persistent_shortage(self):
        # txn 1 fails at t=1 while txn 0's 60 is escrowed; by its retry
        # at t=6 the escrow has *settled* (depletion: 40 left on A->B),
        # so the retry fails too — but is counted, and the final-failure
        # latency covers the wait.
        workload = payments(
            ("A", "C", 60.0, 0.0),
            ("A", "C", 60.0, 1.0),
        )
        result = run_concurrent_simulation(
            line_graph(),
            shortest_path_factory(),
            workload,
            rng=random.Random(0),
            config=ConcurrencyConfig(
                hop_latency=1.0, max_retries=1, retry_delay=5.0
            ),
        )
        first, second = result.records
        assert first.success and first.retries == 0
        assert not second.success
        assert second.retries == 1
        assert second.latency == pytest.approx(5.0)
        assert result.retries_total == 1

    def test_retry_rescues_contention_after_holds_release(self):
        # A-B-C-D line.  txn 0 (A->D, 3 hops, settle delay 6 s) exceeds
        # the 5 s timeout, so its escrow is released at t=5.  txn 1
        # (A->C, 2 hops) is blocked by that escrow at t=1, but its retry
        # at t=6 finds the channel whole again and settles in 4 s — a
        # genuinely transient, contention-caused failure rescued by the
        # retry.
        graph = ChannelGraph()
        graph.add_channel("A", "B", 100.0, 100.0)
        graph.add_channel("B", "C", 100.0, 100.0)
        graph.add_channel("C", "D", 100.0, 100.0)
        workload = payments(
            ("A", "D", 80.0, 0.0),
            ("A", "C", 50.0, 1.0),
        )
        result = run_concurrent_simulation(
            graph,
            shortest_path_factory(),
            workload,
            rng=random.Random(0),
            config=ConcurrencyConfig(
                hop_latency=1.0, timeout=5.0, max_retries=1, retry_delay=5.0
            ),
        )
        first, second = result.records
        assert first.timed_out and not first.success
        assert second.success
        assert second.retries == 1
        # retry at t=6 settles at t=10; started at t=1.
        assert second.latency == pytest.approx(9.0)


class TestDeterminism:
    def _storm(self, seed=0, transactions=60):
        scenario = scenarios.get_scenario("payment-storm")
        factory = scenario.factory(
            workload_overrides={"transactions": transactions}
        )
        graph, workload = factory(random.Random(seed))
        return graph, workload, scenario

    def test_same_seed_identical_records(self):
        graph, workload, scenario = self._storm()
        config = ConcurrencyConfig.from_params(scenario.engine_params)
        results = [
            run_concurrent_simulation(
                graph,
                flash_factory(),
                workload,
                rng=random.Random(11),
                config=config,
            )
            for _ in range(2)
        ]
        assert results[0].records == results[1].records
        assert results[0].to_record() == results[1].to_record()

    def test_workers_identical_to_serial(self):
        scenario = scenarios.get_scenario("payment-storm")
        factory = scenario.factory(workload_overrides={"transactions": 50})
        kwargs = dict(
            runs=2,
            base_seed=3,
            engine="concurrent",
            engine_params=scenario.engine_params,
        )
        factories = {"Flash": flash_factory()}
        serial = run_comparison(factory, factories, **kwargs)
        parallel = run_comparison(factory, factories, workers=2, **kwargs)
        assert serial["Flash"] == parallel["Flash"]

    def test_concurrent_record_carries_latency_fields(self):
        graph, workload, scenario = self._storm(transactions=30)
        result = run_concurrent_simulation(
            graph,
            flash_factory(),
            workload,
            rng=random.Random(1),
            config=ConcurrencyConfig.from_params(scenario.engine_params),
        )
        record = result.to_record()
        for name in METRIC_FIELDS + CONCURRENT_METRIC_FIELDS:
            assert name in record


class TestSequentialEquivalence:
    """engine="sequential" must stay byte-identical to the pre-change engine."""

    def test_sequential_matches_prechange_golden(self):
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        scenario = scenarios.get_scenario("ripple-snapshot")
        factory = scenario.factory(workload_overrides={"transactions": 40})
        graph, workload = factory(random.Random(0))
        for name, router_factory in paper_benchmark_factories().items():
            salt = zlib.crc32(name.encode("utf-8")) % 7_919
            result = run_simulation(
                graph, router_factory, workload, rng=random.Random(salt)
            )
            assert result.to_record() == golden[name]["metrics"], name
            observed = [
                [
                    r.txid,
                    r.amount,
                    r.success,
                    r.fee,
                    r.is_elephant,
                    r.probe_messages,
                    r.payment_messages,
                    r.paths_used,
                ]
                for r in result.records
            ]
            assert observed == golden[name]["records"], name

    def test_sequential_records_do_not_carry_concurrency_fields(self):
        graph = line_graph()
        result = run_simulation(
            graph, shortest_path_factory(), payments(("A", "C", 10.0, 0.0))
        )
        assert result.engine == "sequential"
        for name in CONCURRENT_METRIC_FIELDS:
            assert name not in result.to_record()

    def test_run_comparison_engine_sequential_is_default_path(self):
        factories = {"Shortest Path": shortest_path_factory()}
        default = run_comparison("ripple-snapshot", factories, runs=1)
        explicit = run_comparison(
            "ripple-snapshot", factories, runs=1, engine="sequential"
        )
        assert default["Shortest Path"] == explicit["Shortest Path"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_comparison(
                "ripple-snapshot",
                {"Shortest Path": shortest_path_factory()},
                runs=1,
                engine="warp",
            )

    def test_engine_params_with_sequential_engine_rejected(self):
        # Knobs that would be silently ignored must fail loudly instead.
        with pytest.raises(ValueError, match="no effect"):
            run_comparison(
                "ripple-snapshot",
                {"Shortest Path": shortest_path_factory()},
                runs=1,
                engine_params={"load": 500.0},
            )
        with pytest.raises(ValueError, match="no effect"):
            run_comparison(
                "timeout-stress",
                {"Shortest Path": shortest_path_factory()},
                runs=1,
                engine="sequential",
                engine_params={"timeout": 0.001},
            )


class TestChurnInterleaving:
    def test_close_on_channel_with_inflight_escrow_is_dropped(self):
        from repro.network.dynamics import ChannelEvent, ChannelEventType

        graph = line_graph()
        funds_before = graph.network_funds()
        # The close lands at t=2 while txn 0's holds (placed at t=0,
        # settling at t=4) still escrow B-C.  A channel with pending
        # HTLCs cannot cooperatively close, so the event is dropped:
        # no crash, the payment settles, and funds are conserved.
        events = [
            ChannelEvent(time=2.0, kind=ChannelEventType.CLOSE, a="B", b="C")
        ]
        result = run_concurrent_simulation(
            graph,
            shortest_path_factory(),
            payments(("A", "C", 80.0, 0.0)),
            rng=random.Random(0),
            config=ConcurrencyConfig(hop_latency=1.0, max_retries=0),
            events=events,
            copy_graph=False,
        )
        assert result.records[0].success
        assert graph.has_channel("B", "C")
        assert graph.total_held() == 0.0
        assert graph.network_funds() == pytest.approx(funds_before)

    def test_close_on_idle_channel_still_applies(self):
        from repro.network.dynamics import ChannelEvent, ChannelEventType

        graph = line_graph()
        events = [
            ChannelEvent(time=10.0, kind=ChannelEventType.CLOSE, a="B", b="C")
        ]
        result = run_concurrent_simulation(
            graph,
            shortest_path_factory(),
            payments(("A", "C", 80.0, 0.0), ("A", "C", 10.0, 20.0)),
            rng=random.Random(0),
            config=ConcurrencyConfig(hop_latency=1.0, max_retries=0),
            events=events,
            copy_graph=False,
        )
        # txn 0 settled before the close; txn 1 finds no B-C channel.
        assert result.records[0].success
        assert not result.records[1].success
        assert not graph.has_channel("B", "C")

    def test_events_apply_at_scaled_time(self):
        from repro.network.dynamics import ChannelEvent, ChannelEventType

        graph = line_graph()
        # Opening A-C at t=10 gives the t=20 payment a direct 1-hop
        # path; with load=2 the event fires at simulated t=5, still
        # before the payment's compressed start at t=10.
        events = [
            ChannelEvent(
                time=10.0,
                kind=ChannelEventType.OPEN,
                a="A",
                b="C",
                balance_a=500.0,
                balance_b=500.0,
            )
        ]
        workload = payments(("A", "C", 400.0, 20.0))
        result = run_concurrent_simulation(
            graph,
            shortest_path_factory(),
            workload,
            rng=random.Random(0),
            config=ConcurrencyConfig(
                hop_latency=1.0, load=2.0, gossip_period=1.0
            ),
            events=events,
        )
        record = result.records[0]
        # 400 only fits over the fresh direct channel (1 hop => 2 s).
        assert record.success
        assert record.latency == pytest.approx(2.0)


class TestLoadDependence:
    """The PR's acceptance criterion, on the registered scenario."""

    def test_payment_storm_degrades_with_offered_load(self):
        scenario = scenarios.get_scenario("payment-storm")
        factory = scenario.factory(workload_overrides={"transactions": 200})
        by_load = {}
        for load in (1.0, 300.0, 3000.0):
            comparison = run_comparison(
                factory,
                {"Flash": flash_factory()},
                runs=3,
                base_seed=0,
                engine="concurrent",
                engine_params={**scenario.engine_params, "load": load},
            )
            by_load[load] = comparison["Flash"]
        success = [by_load[load].success_ratio for load in (1.0, 300.0, 3000.0)]
        p95 = [by_load[load].latency_p95 for load in (1.0, 300.0, 3000.0)]
        assert success[0] > success[1] > success[2], success
        assert p95[0] < p95[1] < p95[2], p95

    def test_timeout_stress_produces_timeout_failures(self):
        comparison = run_comparison(
            "timeout-stress",
            {"Flash": flash_factory()},
            runs=1,
        )
        assert comparison["Flash"].timeout_failures > 0


class TestStoreRoundTrip:
    def test_concurrent_cells_resume_float_exactly(self, tmp_path):
        from repro.eval.store import ExperimentStore

        scenario = scenarios.get_scenario("timeout-stress")
        factory = scenario.factory(workload_overrides={"transactions": 40})
        factories = {"Flash": flash_factory()}
        kwargs = dict(
            runs=2,
            base_seed=0,
            experiment="timeout-stress",
            engine="concurrent",
            engine_params=scenario.engine_params,
        )
        fresh = run_comparison(
            factory, factories, store=ExperimentStore(tmp_path), **kwargs
        )
        resumed = run_comparison(
            factory, factories, store=ExperimentStore(tmp_path), **kwargs
        )
        assert fresh["Flash"] == resumed["Flash"]
        assert resumed["Flash"].timeout_failures > 0

    def test_engine_knobs_partition_the_store(self, tmp_path):
        from repro.eval.store import ExperimentStore

        scenario = scenarios.get_scenario("timeout-stress")
        factory = scenario.factory(workload_overrides={"transactions": 30})
        factories = {"Flash": flash_factory()}
        store = ExperimentStore(tmp_path)
        kwargs = dict(
            runs=1, base_seed=0, experiment="timeout-stress", store=store
        )
        run_comparison(
            factory,
            factories,
            engine="concurrent",
            engine_params={"timeout": 1.0},
            **kwargs,
        )
        assert len(store) == 1
        # A different knob value is a different cell, not a resume hit.
        run_comparison(
            factory,
            factories,
            engine="concurrent",
            engine_params={"timeout": 2.0},
            **kwargs,
        )
        assert len(store) == 2


class TestDocstrings:
    """Satellite: docstring enforcement extends to the concurrent engine."""

    def test_concurrent_module_public_api_documented(self):
        import inspect

        from repro.sim import concurrent

        assert concurrent.__doc__
        for name in sorted(vars(concurrent)):
            if name.startswith("_"):
                continue
            obj = vars(concurrent)[name]
            if (
                inspect.isfunction(obj) or inspect.isclass(obj)
            ) and obj.__module__ == concurrent.__name__:
                assert obj.__doc__, f"repro.sim.concurrent.{name} undocumented"
                if inspect.isclass(obj):
                    for method_name, method in vars(obj).items():
                        if not method_name.startswith("_") and inspect.isfunction(
                            method
                        ):
                            assert method.__doc__, (
                                f"{name}.{method_name} undocumented"
                            )

    def test_engine_docstring_names_both_engines(self):
        from repro.sim import engine

        assert "sequential" in engine.__doc__
        assert "concurrent" in engine.__doc__
        assert "byte-identical" in engine.__doc__
