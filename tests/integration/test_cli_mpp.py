"""CLI coverage for multi-part payments: run/sweep flags and errors."""

import pytest

from repro.cli import main


class TestRunMpp:
    def test_mpp_scenario_prints_mpp_columns(self, capsys):
        code = main(
            ["run", "mpp-storm", "--transactions", "20", "--runs", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mpp=on" in out
        assert "mpp sr (%)" in out and "parts/pay" in out

    def test_mpp_flag_enables_on_sequential_scenario(self, capsys):
        code = main(
            [
                "run", "ripple-snapshot",
                "--transactions", "15", "--runs", "1",
                "--mpp", "--mpp-param", "split=flash",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mpp=on" in out and "split=flash" in out
        assert "parts/pay" in out

    def test_mpp_param_alone_implies_mpp(self, capsys):
        code = main(
            [
                "run", "ripple-snapshot",
                "--transactions", "10", "--runs", "1",
                "--mpp-param", "max_parts=2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mpp=on" in out

    def test_mpp_free_run_has_no_mpp_columns(self, capsys):
        code = main(
            ["run", "ripple-snapshot", "--transactions", "10", "--runs", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mpp" not in out and "parts/pay" not in out

    def test_bad_mpp_param_fails_cleanly(self, capsys):
        code = main(
            [
                "run", "ripple-snapshot",
                "--transactions", "10", "--runs", "1",
                "--mpp-param", "bogus=1",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown mpp parameter" in err

    def test_bad_mpp_value_fails_cleanly(self, capsys):
        code = main(
            [
                "run", "ripple-snapshot",
                "--transactions", "10", "--runs", "1",
                "--mpp-param", "max_parts=0",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "max_parts" in err


class TestSweepMpp:
    def test_mpp_axis_sweeps_split_policies(self, capsys):
        code = main(
            [
                "sweep", "mpp-storm",
                "--axis", "mpp.split", "--values", "equal,flash",
                "--transactions", "15", "--runs", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mpp=on" in out
        assert "MPP success ratio" in out
        assert "parts per payment" in out

    def test_mpp_axis_without_mpp_fails_cleanly(self, capsys):
        code = main(
            [
                "sweep", "ripple-snapshot",
                "--axis", "mpp.split", "--values", "equal",
                "--runs", "1",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "--mpp" in err

    def test_mpp_axis_validates_values_eagerly(self, capsys):
        code = main(
            [
                "sweep", "mpp-storm",
                "--axis", "mpp.split", "--values", "equal,bogus",
                "--runs", "1",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "split" in err

    def test_mpp_flag_enables_axis_on_any_scenario(self, capsys):
        code = main(
            [
                "sweep", "ripple-snapshot", "--mpp",
                "--axis", "mpp.max_parts", "--values", "1,3",
                "--transactions", "10", "--runs", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "parts per payment" in out
