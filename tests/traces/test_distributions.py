"""Calibration tests: the synthetic size distributions must reproduce the
paper's Fig-3 statistics (§2.2)."""

import random

import pytest

from repro.traces.distributions import (
    LogNormalSpec,
    PaymentSizeDistribution,
    bitcoin_size_distribution,
    make_calibrated_distribution,
    ripple_size_distribution,
)
from repro.traces.workload import percentile
from repro.traces.analysis import volume_share_of_top


class TestLogNormalSpec:
    def test_median(self):
        rng = random.Random(0)
        spec = LogNormalSpec(median=100.0, sigma=1.0)
        samples = sorted(spec.sample(rng) for _ in range(4_000))
        assert 85.0 < samples[len(samples) // 2] < 118.0

    def test_mean_formula(self):
        spec = LogNormalSpec(median=10.0, sigma=0.0)
        assert spec.mean == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormalSpec(median=-1.0, sigma=1.0)
        with pytest.raises(ValueError):
            LogNormalSpec(median=1.0, sigma=-1.0)


class TestMixture:
    def test_tail_weight_validation(self):
        body = LogNormalSpec(1.0, 1.0)
        with pytest.raises(ValueError):
            PaymentSizeDistribution(body, body, tail_weight=1.5)

    def test_sample_many_length(self):
        dist = ripple_size_distribution()
        assert len(dist.sample_many(random.Random(0), 100)) == 100

    def test_all_samples_positive(self):
        dist = ripple_size_distribution()
        assert all(x > 0 for x in dist.sample_many(random.Random(0), 1_000))


class TestRippleCalibration:
    @pytest.fixture(scope="class")
    def samples(self):
        return ripple_size_distribution().sample_many(random.Random(42), 40_000)

    def test_median_close_to_paper(self, samples):
        # Paper: median $4.8.
        assert 3.5 < percentile(samples, 0.5) < 7.5

    def test_top_decile_sits_above_paper_p90(self, samples):
        # Paper: top 10% are larger than $1,740.  The mixture CDF is nearly
        # flat between body and tail, so we assert just inside the tail.
        assert percentile(samples, 0.92) > 0.8 * 1_740.0

    def test_p90_in_body_tail_gap(self, samples):
        # The empirical p90 must exceed the body's bulk by a wide margin.
        assert percentile(samples, 0.9) > 50 * percentile(samples, 0.5)

    def test_top_decile_volume_share(self, samples):
        # Paper: top 10% of payments carry 94.5% of volume.
        share = volume_share_of_top(samples, 0.10)
        assert 0.90 < share < 0.99


class TestBitcoinCalibration:
    @pytest.fixture(scope="class")
    def samples(self):
        return bitcoin_size_distribution().sample_many(random.Random(42), 40_000)

    def test_median_close_to_paper(self, samples):
        # Paper: median 1.293e6 satoshi.
        assert 0.8e6 < percentile(samples, 0.5) < 2.0e6

    def test_top_decile_sits_above_paper_p90(self, samples):
        # Paper: top 10% are larger than 8.9e7 satoshi.
        assert percentile(samples, 0.92) > 0.8 * 8.9e7

    def test_top_decile_volume_share(self, samples):
        # Paper: 94.7% of volume in the top decile.
        share = volume_share_of_top(samples, 0.10)
        assert 0.90 < share < 0.995


class TestCalibrationSolver:
    def test_degenerate_tail(self):
        # A tiny volume share is achievable with a point-mass tail.
        dist = make_calibrated_distribution(10.0, 20.0, 0.05)
        assert dist.tail.sigma == 0.0

    def test_rejects_certain_volume_share(self):
        with pytest.raises(ValueError):
            make_calibrated_distribution(10.0, 20.0, 1.0)

    def test_rejects_bad_tail_weight(self):
        with pytest.raises(ValueError):
            make_calibrated_distribution(10.0, 20.0, 0.5, tail_weight=0.0)
