"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import EventBudgetError, ReproError
from repro.protocol.events import EventQueue


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.0, lambda: seen.append("late"))
        queue.schedule(1.0, lambda: seen.append("early"))
        queue.run_until_idle()
        assert seen == ["early", "late"]

    def test_fifo_for_simultaneous_events(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, lambda: seen.append("first"))
        queue.schedule(1.0, lambda: seen.append("second"))
        queue.run_until_idle()
        assert seen == ["first", "second"]

    def test_clock_advances(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run_until_idle()
        assert queue.now == 5.0

    def test_cascading_events(self):
        queue = EventQueue()
        seen = []

        def first():
            seen.append("a")
            queue.schedule(1.0, lambda: seen.append("b"))

        queue.schedule(1.0, first)
        count = queue.run_until_idle()
        assert seen == ["a", "b"]
        assert count == 2
        assert queue.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_event_budget_detects_livelock(self):
        queue = EventQueue()

        def forever():
            queue.schedule(1.0, forever)

        queue.schedule(1.0, forever)
        with pytest.raises(EventBudgetError):
            queue.run_until_idle(max_events=50)

    def test_event_budget_error_is_library_and_runtime_error(self):
        # The CLI catches ReproError; legacy callers caught RuntimeError.
        assert issubclass(EventBudgetError, ReproError)
        assert issubclass(EventBudgetError, RuntimeError)

    def test_callable_budget_grows_while_draining(self):
        queue = EventQueue()
        budget = {"limit": 1}
        seen = []

        def feed(n):
            seen.append(n)
            if n < 4:
                budget["limit"] += 1
                queue.schedule(1.0, lambda: feed(n + 1))

        queue.schedule(1.0, lambda: feed(0))
        queue.run_until_idle(max_events=lambda: budget["limit"])
        assert seen == [0, 1, 2, 3, 4]

    def test_callable_budget_still_detects_livelock(self):
        queue = EventQueue()

        def forever():
            queue.schedule(1.0, forever)

        queue.schedule(1.0, forever)
        with pytest.raises(EventBudgetError):
            queue.run_until_idle(max_events=lambda: 25)
