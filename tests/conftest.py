"""Shared fixtures: small canonical topologies and seeded RNGs."""

from __future__ import annotations

import random

import pytest

from repro.network.graph import ChannelGraph
from repro.network.topology import grid_topology, line_topology


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def line_graph() -> ChannelGraph:
    """0 - 1 - 2 - 3, each direction funded with 100."""
    return line_topology(4, balance=100.0)


@pytest.fixture
def grid_graph() -> ChannelGraph:
    """3x3 grid, each direction funded with 100."""
    return grid_topology(3, 3, balance=100.0)


@pytest.fixture
def diamond_graph() -> ChannelGraph:
    """Two disjoint 2-hop paths 0->1->3 and 0->2->3 plus a cross edge 1-2.

    A minimal topology where multi-path routing beats single-path.
    """
    graph = ChannelGraph()
    graph.add_channel(0, 1, 50.0, 50.0)
    graph.add_channel(1, 3, 50.0, 50.0)
    graph.add_channel(0, 2, 50.0, 50.0)
    graph.add_channel(2, 3, 50.0, 50.0)
    graph.add_channel(1, 2, 10.0, 10.0)
    return graph


@pytest.fixture
def fig5a_graph() -> ChannelGraph:
    """The paper's Figure 5(a): shortest paths share a 30-capacity
    bottleneck 1-2 while 1-5-4-6 is underutilized."""
    graph = ChannelGraph()
    graph.add_channel(1, 2, 30.0, 30.0)
    graph.add_channel(2, 3, 30.0, 30.0)
    graph.add_channel(2, 6, 30.0, 0.0)
    graph.add_channel(3, 6, 30.0, 30.0)
    graph.add_channel(1, 5, 20.0, 20.0)
    graph.add_channel(5, 4, 20.0, 20.0)
    graph.add_channel(4, 6, 20.0, 20.0)
    return graph
