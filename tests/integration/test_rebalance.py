"""Tests for the Revive-style rebalancing extension."""

import random

import pytest

from repro.extensions.rebalance import (
    Rebalancer,
    channel_skew,
    find_rebalancing_cycle,
)
from repro.network.graph import ChannelGraph
from repro.network.topology import grid_topology, ripple_like_topology
from repro.sim.engine import run_simulation
from repro.sim.factories import shortest_path_factory
from repro.traces.generators import generate_ripple_workload


def skewed_triangle() -> ChannelGraph:
    """A triangle where channel a-b is fully one-sided."""
    graph = ChannelGraph()
    graph.add_channel("a", "b", 100.0, 0.0)
    graph.add_channel("b", "c", 50.0, 50.0)
    graph.add_channel("c", "a", 50.0, 50.0)
    return graph


class TestSkew:
    def test_even_channel_zero_skew(self):
        graph = grid_topology(2, 2)
        assert channel_skew(graph.channel(0, 1)) == 0.0

    def test_one_sided_channel_full_skew(self):
        graph = skewed_triangle()
        assert channel_skew(graph.channel("a", "b")) == 1.0


class TestFindCycle:
    def test_cycle_found_in_triangle(self):
        graph = skewed_triangle()
        cycle = find_rebalancing_cycle(graph, "a", "b", 25.0)
        assert cycle == ["a", "b", "c", "a"]

    def test_no_cycle_when_detour_lacks_balance(self):
        graph = skewed_triangle()
        cycle = find_rebalancing_cycle(graph, "a", "b", 60.0)
        assert cycle is None

    def test_no_cycle_when_rich_side_lacks_amount(self):
        graph = skewed_triangle()
        assert find_rebalancing_cycle(graph, "b", "a", 10.0) is None


class TestRebalancer:
    def test_reduces_skew_and_conserves_funds(self):
        graph = skewed_triangle()
        funds = graph.network_funds()
        before = channel_skew(graph.channel("a", "b"))
        report = Rebalancer(graph, random.Random(0)).rebalance_once()
        assert report.cycles_executed == 1
        assert channel_skew(graph.channel("a", "b")) < before
        assert graph.network_funds() == pytest.approx(funds)

    def test_channel_totals_invariant(self):
        graph = skewed_triangle()
        totals = {
            channel.endpoints(): channel.total_capacity()
            for channel in graph.channels()
        }
        Rebalancer(graph, random.Random(0)).run(passes=3)
        for channel in graph.channels():
            assert channel.total_capacity() == pytest.approx(
                totals[channel.endpoints()]
            )

    def test_noop_on_balanced_network(self):
        graph = grid_topology(3, 3)
        report = Rebalancer(graph, random.Random(0)).rebalance_once()
        assert report.cycles_executed == 0

    def test_validation(self):
        graph = grid_topology(2, 2)
        with pytest.raises(ValueError):
            Rebalancer(graph, skew_threshold=2.0)
        with pytest.raises(ValueError):
            Rebalancer(graph, target_fraction=0.0)


class TestRebalancingHelpsRouting:
    def test_success_ratio_improves_after_rebalance(self):
        """The paper's §4.2 observation: one-directional saturation kills
        success ratio; rebalancing (Revive [22]) restores it."""
        rng = random.Random(9)
        graph = ripple_like_topology(rng, n_nodes=80, n_edges=400)
        # Saturate: run a workload that drains channels one way.
        drain = generate_ripple_workload(rng, graph.nodes, 300)
        run_simulation(
            graph, shortest_path_factory(), drain, copy_graph=False
        )
        probe_load = generate_ripple_workload(rng, graph.nodes, 150)
        before = run_simulation(
            graph, shortest_path_factory(), probe_load
        ).success_ratio
        rebalanced = graph.copy()
        Rebalancer(rebalanced, random.Random(1), skew_threshold=0.5).run(
            passes=5, max_cycles=200
        )
        after = run_simulation(
            rebalanced, shortest_path_factory(), probe_load
        ).success_ratio
        assert after >= before
