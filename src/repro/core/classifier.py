"""Elephant–mice payment classification (§2.2, §4.3).

Flash treats a payment as an *elephant* when its size is at or above a
threshold; the paper sets the threshold "such that 90% of payments are
mice" (§4.1) and sweeps it in Fig 10.  Two classifiers are provided:

* :class:`StaticThresholdClassifier` — a fixed cutoff, computed offline
  from a workload quantile (how the paper's evaluation sets it);
* :class:`StreamingQuantileClassifier` — an online estimator that tracks
  the quantile over the payments actually seen, for deployments where no
  historical trace is available (an extension beyond the paper; validated
  in the ablation benches).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.traces.workload import Workload


@dataclass(frozen=True)
class StaticThresholdClassifier:
    """Payments with ``amount >= threshold`` are elephants."""

    threshold: float

    def is_elephant(self, amount: float) -> bool:
        return amount >= self.threshold

    def observe(self, amount: float) -> None:
        """Static classifier ignores observations."""

    @classmethod
    def from_workload(
        cls, workload: Workload, mice_fraction: float = 0.9
    ) -> "StaticThresholdClassifier":
        """Cutoff such that ``mice_fraction`` of the workload is mice."""
        return cls(workload.threshold_for_mice_fraction(mice_fraction))

    @classmethod
    def all_mice(cls) -> "StaticThresholdClassifier":
        """Every payment is a mouse (Fig 10's 100% point)."""
        return cls(float("inf"))

    @classmethod
    def all_elephants(cls) -> "StaticThresholdClassifier":
        """Every payment is an elephant (Fig 10's 0% point)."""
        return cls(0.0)


class StreamingQuantileClassifier:
    """Online mice-quantile tracking over a sliding sample.

    Keeps the most recent ``window`` amounts in sorted order and classifies
    a payment as elephant when it exceeds the ``mice_fraction`` quantile of
    the sample.  Until ``min_observations`` amounts have been seen, every
    payment is treated as a mouse (safe default: mice routing is the cheap
    path).
    """

    def __init__(
        self,
        mice_fraction: float = 0.9,
        window: int = 2_000,
        min_observations: int = 20,
    ) -> None:
        if not 0.0 <= mice_fraction <= 1.0:
            raise ValueError(f"mice_fraction must be in [0, 1], got {mice_fraction}")
        if window <= 0 or min_observations <= 0:
            raise ValueError("window and min_observations must be positive")
        self.mice_fraction = mice_fraction
        self.window = window
        self.min_observations = min_observations
        self._sorted: list[float] = []
        self._fifo: list[float] = []

    def observe(self, amount: float) -> None:
        """Record a payment size in the sliding sample."""
        self._fifo.append(amount)
        bisect.insort(self._sorted, amount)
        if len(self._fifo) > self.window:
            oldest = self._fifo.pop(0)
            index = bisect.bisect_left(self._sorted, oldest)
            del self._sorted[index]

    @property
    def threshold(self) -> float:
        """Current estimated cutoff (``inf`` while warming up)."""
        if len(self._sorted) < self.min_observations:
            return float("inf")
        index = min(
            int(self.mice_fraction * len(self._sorted)), len(self._sorted) - 1
        )
        return self._sorted[index]

    def is_elephant(self, amount: float) -> bool:
        return amount >= self.threshold
