"""Differential fuzz layer: the numpy backend must be *bit-identical*.

The ``python`` backend is the golden-pinned reference implementation —
every golden table in the repo was recorded under it.  The ``numpy``
backend (vectorized frontier sweeps + shared-memory topology export) is
only allowed to exist because this suite proves, on seeded random
inputs, that it is observationally indistinguishable:

* ``distances_idx`` / ``tree_parents_idx`` return **the same dict in the
  same insertion order** (insertion order *is* BFS discovery order, and
  downstream tie-breaks depend on it);
* ``bfs_shortest_path`` / ``yen_k_shortest_paths`` return the same path
  *sequences*, above and below the bidirectional-kernel threshold;
* Algorithm 1 (``find_elephant_paths``) returns identical paths, flows,
  probed capacities, and max-flow values;
* the fee-weighted kernels (``cheapest_path``, ``yen_cheapest_paths``)
  return the same paths and the same send totals *to the bit* on
  randomly policy-priced graphs;
* end-to-end ``run_comparison`` metrics are equal across
  {serial python, serial numpy, parallel numpy + shared memory} on both
  the sequential and the concurrent engine — including a fee-market run
  (policies + load-responsive repricing controller), where the fee
  metrics themselves must agree.

Everything is seeded stdlib :mod:`random`, so any failure replays from
its seed.  The whole module is skipped when numpy is not installed —
the python backend then simply has nothing to diverge from.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

import pytest

from repro.network import shared as shared_topology
from repro.network.compact import (
    CompactTopology,
    get_default_backend,
    numpy_available,
    set_default_backend,
)
from repro.network.feemarket import FeeMarketController, assign_market_policies
from repro.network.fees import ChannelPolicy
from repro.network.graph import ChannelGraph
from repro.network.paths import (
    bfs_distances,
    bfs_shortest_path,
    cheapest_path,
    yen_cheapest_paths,
    yen_k_shortest_paths,
)
from repro.network.topology import (
    barabasi_albert_edges,
    build_channel_graph,
    grid_topology,
    uniform_sampler,
)
from repro.network.view import NetworkView
from repro.core.maxflow import find_elephant_paths
from repro.sim.factories import flash_factory, shortest_path_factory
from repro.sim.runner import run_comparison
from repro.traces.generators import generate_ripple_workload

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy is not installed"
)

#: One size below BIDIRECTIONAL_MIN_NODES (pure serial BFS reference),
#: one above (bidirectional single-pair kernel + vectorized sweeps).
GRAPH_SIZES = (60, 300)

FACTORIES = {
    "Flash": flash_factory(k=5, m=2),
    "Shortest Path": shortest_path_factory(),
}


@contextmanager
def _backend(name: str):
    previous = get_default_backend()
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


def _random_graph(rng: random.Random, n_nodes: int) -> ChannelGraph:
    edges = barabasi_albert_edges(n_nodes, 2, rng)
    return build_channel_graph(edges, uniform_sampler(50.0, 150.0), rng)


def _churn(rng: random.Random, graph: ChannelGraph, ops: int) -> None:
    """Random opens/closes so delta snapshots (tombstones+arena) are hit."""
    for _ in range(ops):
        if rng.random() < 0.5:
            a, b = rng.sample(graph.nodes, 2)
            if not graph.has_channel(a, b):
                graph.add_channel(a, b, rng.uniform(10, 50), rng.uniform(10, 50))
        else:
            channel = rng.choice(list(graph.channels()))
            graph.remove_channel(channel.a, channel.b)


def _snapshots(graph: ChannelGraph) -> tuple[CompactTopology, CompactTopology]:
    """The same adjacency compacted under each backend."""
    adjacency = graph.adjacency()
    py = CompactTopology.from_adjacency(adjacency, backend="python")
    np_ = CompactTopology.from_adjacency(adjacency, backend="numpy")
    return py, np_


class TestKernelBitIdentity:
    """Raw kernel sweeps: same dicts, same insertion order."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("n_nodes", GRAPH_SIZES)
    def test_distance_and_tree_sweeps(self, seed, n_nodes):
        rng = random.Random(10_000 * n_nodes + seed)
        graph = _random_graph(rng, n_nodes)
        py, np_ = _snapshots(graph)
        assert py.backend == "python" and np_.backend == "numpy"
        for src in rng.sample(range(py.num_nodes), 12):
            d_py = py.distances_idx(src)
            d_np = np_.distances_idx(src)
            # == alone ignores order; items() pins discovery order too.
            assert list(d_py.items()) == list(d_np.items())
            t_py = py.tree_parents_idx(src)
            t_np = np_.tree_parents_idx(src)
            assert list(t_py.items()) == list(t_np.items())

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("n_nodes", GRAPH_SIZES)
    def test_sweeps_after_churn_deltas(self, seed, n_nodes):
        # apply_delta-derived snapshots (tombstones + arena rows) must
        # vectorize identically to the serial walk over live slots.
        rng = random.Random(20_000 * n_nodes + seed)
        graph = _random_graph(rng, n_nodes)
        with _backend("python"):
            graph.compact()  # warm so subsequent compacts are deltas
        for _ in range(4):
            _churn(rng, graph, rng.randrange(2, 8))
            adjacency = graph.adjacency()
            with _backend("python"):
                d_py = graph.compact()
            np_ = CompactTopology.from_adjacency(adjacency, backend="numpy")
            for src in rng.sample(range(np_.num_nodes), 6):
                # The delta snapshot's python sweep vs a fresh numpy
                # rebuild: identical because interning order is identical.
                node = np_.nodes[src]
                assert bfs_distances(d_py, node) == bfs_distances(np_, node)
                assert list(np_.distances_idx(src).items()) == list(
                    CompactTopology.from_adjacency(
                        adjacency, backend="python"
                    )
                    .distances_idx(src)
                    .items()
                )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("n_nodes", GRAPH_SIZES)
    def test_paths_identical(self, seed, n_nodes):
        rng = random.Random(30_000 * n_nodes + seed)
        graph = _random_graph(rng, n_nodes)
        py, np_ = _snapshots(graph)
        nodes = graph.nodes
        for _ in range(10):
            a, b = rng.sample(nodes, 2)
            assert bfs_shortest_path(py, a, b) == bfs_shortest_path(np_, a, b)
        a, b = rng.sample(nodes, 2)
        assert yen_k_shortest_paths(py, a, b, 4) == yen_k_shortest_paths(
            np_, a, b, 4
        )

    def test_grid_sweeps_identical(self):
        graph = grid_topology(12, 12, balance=80.0)
        py, np_ = _snapshots(graph)
        for src in range(0, py.num_nodes, 17):
            assert list(py.distances_idx(src).items()) == list(
                np_.distances_idx(src).items()
            )
            assert list(py.tree_parents_idx(src).items()) == list(
                np_.tree_parents_idx(src).items()
            )


class TestMaxflowBitIdentity:
    """Algorithm 1 end to end: probing, residuals, flows."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("n_nodes", GRAPH_SIZES)
    def test_elephant_paths_identical(self, seed, n_nodes):
        rng = random.Random(40_000 * n_nodes + seed)
        graph = _random_graph(rng, n_nodes)
        pairs = [tuple(rng.sample(graph.nodes, 2)) for _ in range(6)]
        results = {}
        for backend in ("python", "numpy"):
            snapshot = CompactTopology.from_adjacency(
                graph.adjacency(), backend=backend
            )
            view = NetworkView(graph.copy())
            out = []
            for source, target in pairs:
                r = find_elephant_paths(
                    snapshot, view, source, target, demand=120.0, k=4
                )
                out.append(
                    (
                        r.paths,
                        r.flows,
                        sorted(r.capacity.items()),
                        sorted(r.fees),
                        r.max_flow,
                        r.satisfied,
                    )
                )
            results[backend] = out
        assert results["python"] == results["numpy"]


def _price_random_directions(rng: random.Random, graph: ChannelGraph) -> None:
    """Random BOLT policies (fees + htlc bounds) on most directions."""
    for channel in graph.channels():
        a, b = channel.endpoints()
        for src, dst in ((a, b), (b, a)):
            if rng.random() < 0.2:
                continue
            hmin = rng.choice([0.0, 0.0, 5.0, 20.0])
            graph.set_channel_policy(
                src,
                dst,
                ChannelPolicy(
                    base_fee=rng.choice([0.0, 0.2, 1.0]),
                    fee_rate=rng.choice([0.0, 0.002, 0.01, 0.08]),
                    htlc_min=hmin,
                    htlc_max=rng.choice([float("inf"), 400.0, max(hmin, 60.0)]),
                ),
            )


def _priced_snapshots(
    graph: ChannelGraph,
) -> tuple[CompactTopology, CompactTopology]:
    """The same priced adjacency, policy-installed under each backend."""
    snapshots = _snapshots(graph)
    for snapshot in snapshots:
        snapshot.install_policies(
            graph.channel_policy, version=graph.policy_version
        )
    return snapshots


class TestFeeKernelBitIdentity:
    """Fee-weighted kernels: same paths, bit-identical send totals."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("n_nodes", GRAPH_SIZES)
    def test_cheapest_paths_identical(self, seed, n_nodes):
        rng = random.Random(60_000 * n_nodes + seed)
        graph = _random_graph(rng, n_nodes)
        _price_random_directions(rng, graph)
        py, np_ = _priced_snapshots(graph)
        nodes = graph.nodes
        for _ in range(12):
            a, b = rng.sample(nodes, 2)
            amount = rng.choice([1.0, 15.0, 55.0, 250.0])
            assert cheapest_path(py, a, b, amount) == cheapest_path(
                np_, a, b, amount
            )

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("n_nodes", GRAPH_SIZES)
    def test_yen_fee_paths_identical(self, seed, n_nodes):
        rng = random.Random(70_000 * n_nodes + seed)
        graph = _random_graph(rng, n_nodes)
        _price_random_directions(rng, graph)
        py, np_ = _priced_snapshots(graph)
        for _ in range(4):
            a, b = rng.sample(graph.nodes, 2)
            amount = rng.choice([1.0, 15.0, 55.0])
            assert yen_cheapest_paths(py, a, b, amount, 4) == (
                yen_cheapest_paths(np_, a, b, amount, 4)
            )


class TestEndToEndIdentity:
    """run_comparison: serial python == serial numpy == parallel numpy."""

    def _compare(self, scenario, engine=None, engine_params=None):
        outcomes = {}
        with _backend("python"):
            outcomes["serial-python"] = run_comparison(
                scenario, FACTORIES, runs=2, base_seed=7,
                engine=engine, engine_params=engine_params,
            )
        with _backend("numpy"):
            outcomes["serial-numpy"] = run_comparison(
                scenario, FACTORIES, runs=2, base_seed=7,
                engine=engine, engine_params=engine_params,
            )
            outcomes["parallel-numpy"] = run_comparison(
                scenario, FACTORIES, runs=2, base_seed=7, workers=2,
                engine=engine, engine_params=engine_params,
            )
        reference = outcomes["serial-python"]
        for label, result in outcomes.items():
            assert result.schemes() == reference.schemes(), label
            for scheme in reference.schemes():
                assert result[scheme] == reference[scheme], (
                    f"{label}/{scheme} diverged from the python reference"
                )

    @staticmethod
    def _grid_scenario(rng: random.Random):
        graph = grid_topology(8, 8, balance=60.0)
        workload = generate_ripple_workload(rng, graph.nodes, 50)
        return graph, workload

    @staticmethod
    def _ba_scenario(rng: random.Random):
        graph = _random_graph(rng, 80)
        graph.scale_balances(5.0)
        workload = generate_ripple_workload(rng, graph.nodes, 50)
        return graph, workload

    def test_sequential_engine_grid(self):
        # Seed-independent topology: the parallel leg exercises the
        # shared-memory export *and* adoption (digest always matches).
        self._compare(self._grid_scenario)

    def test_sequential_engine_ba(self):
        # Seed-dependent topology: adoption digest only matches for the
        # probed run; the fallback path must stay bit-identical too.
        self._compare(self._ba_scenario)

    @staticmethod
    def _fee_market_scenario(rng: random.Random):
        # Priced directions + a repricing controller: the fee recursion,
        # feasibility pruning, fee-aware escrow, and the gossip-tick
        # repricing all sit on the compared path, and the fee metrics
        # (fee_paid_total/fee_p50/hub_revenue) join the equality check
        # through AveragedMetrics.
        graph = _random_graph(rng, 80)
        graph.scale_balances(5.0)
        assign_market_policies(graph, rng, initial_rate=0.01, paper_mix=True)
        graph.fee_controller = FeeMarketController(sensitivity=6.0)
        workload = generate_ripple_workload(rng, graph.nodes, 50)
        return graph, workload, []

    def test_sequential_engine_fee_market(self):
        self._compare(self._fee_market_scenario)

    def test_concurrent_engine_grid(self):
        self._compare(
            self._grid_scenario,
            engine="concurrent",
            engine_params={"load": 40.0},
        )

    def test_concurrent_engine_fee_market(self):
        self._compare(
            self._fee_market_scenario,
            engine="concurrent",
            engine_params={"load": 40.0},
        )

    def test_no_shared_segment_leak(self, tmp_path):
        # After the parallel numpy legs above, nothing may linger in the
        # process-wide registry or on /dev/shm.
        assert shared_topology.active() is None
        with _backend("numpy"):
            run_comparison(
                self._grid_scenario, FACTORIES, runs=2, base_seed=3,
                workers=2,
            )
        assert shared_topology.active() is None


class TestDefaultBackendIsReference:
    def test_python_is_the_default(self, monkeypatch):
        # Golden pins were recorded under the python backend; the numpy
        # backend is strictly opt-in (flag or REPRO_BACKEND).
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        import importlib

        import repro.network.compact as compact

        assert compact.BACKENDS == ("python", "numpy")
        assert get_default_backend() in compact.BACKENDS
        # The shipped default (no env override) is "python".
        spec = importlib.util.find_spec("repro.network.compact")
        source = spec.loader.get_source("repro.network.compact")
        assert 'os.environ.get("REPRO_BACKEND", "python")' in source
