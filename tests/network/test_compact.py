"""Tests for the CSR compact topology and its fast-path equivalence."""

import random

import pytest

from repro.network.compact import CompactTopology
from repro.network.paths import (
    bfs_distances,
    bfs_shortest_path,
    bfs_tree_parents,
    edge_disjoint_shortest_paths,
    yen_k_shortest_paths,
)
from repro.network.topology import (
    barabasi_albert_edges,
    build_channel_graph,
    grid_topology,
    uniform_sampler,
)


@pytest.fixture
def grid_compact(grid_graph):
    return grid_graph.compact()


class TestConstruction:
    def test_from_graph_interns_all_nodes(self, grid_graph, grid_compact):
        assert sorted(grid_compact.nodes) == sorted(grid_graph.nodes)
        assert grid_compact.num_nodes == grid_graph.num_nodes()

    def test_slot_count_is_directed_edges(self, grid_graph, grid_compact):
        assert grid_compact.num_slots == 2 * grid_graph.num_channels()

    def test_csr_neighbors_match_adjacency(self, grid_graph, grid_compact):
        adjacency = grid_graph.adjacency()
        for node, neighbors in adjacency.items():
            assert list(grid_compact[node]) == neighbors

    def test_reverse_slot_involution(self, grid_compact):
        for slot in range(grid_compact.num_slots):
            rev = grid_compact.reverse_slot[slot]
            assert rev >= 0
            assert grid_compact.reverse_slot[rev] == slot
            assert grid_compact.slot_tail[rev] == grid_compact.indices[slot]

    def test_directed_mapping_has_missing_reverse(self):
        ct = CompactTopology.from_adjacency({0: [1], 1: []})
        assert ct.reverse_slot == [-1]
        assert not ct.is_symmetric

    def test_dangling_neighbor_is_interned(self):
        ct = CompactTopology.from_adjacency({0: [1]})
        assert ct.index_of(1) is not None
        assert list(ct[1]) == []

    def test_from_adjacency_is_idempotent(self, grid_compact):
        assert CompactTopology.from_adjacency(grid_compact) is grid_compact


class TestMappingProtocol:
    def test_len_iter_contains(self, grid_graph, grid_compact):
        assert len(grid_compact) == grid_graph.num_nodes()
        assert list(grid_compact) == list(grid_graph.adjacency())
        assert 0 in grid_compact
        assert 99 not in grid_compact

    def test_getitem_unknown_raises(self, grid_compact):
        with pytest.raises(KeyError):
            grid_compact[99]

    def test_works_as_adjacency_argument(self, grid_graph, grid_compact):
        adjacency = grid_graph.adjacency()
        assert bfs_distances(grid_compact, 0) == bfs_distances(adjacency, 0)
        assert bfs_tree_parents(grid_compact, 4) == bfs_tree_parents(
            adjacency, 4
        )


class TestGraphCache:
    def test_compact_is_cached(self, grid_graph):
        assert grid_graph.compact() is grid_graph.compact()

    def test_topology_change_invalidates(self, grid_graph):
        before = grid_graph.compact()
        grid_graph.add_channel(0, 8, 10.0, 10.0)
        after = grid_graph.compact()
        assert after is not before
        assert 8 in after[0]

    def test_remove_channel_invalidates(self, grid_graph):
        before = grid_graph.compact()
        grid_graph.remove_channel(0, 1)
        after = grid_graph.compact()
        assert after is not before
        assert 1 not in after[0]

    def test_balance_change_keeps_cache(self, grid_graph):
        before = grid_graph.compact()
        grid_graph.channel(0, 1).transfer(0, 1, 5.0)
        assert grid_graph.compact() is before

    def test_version_counter_moves_on_structure(self, grid_graph):
        version = grid_graph.topology_version
        grid_graph.add_node("new")
        assert grid_graph.topology_version == version + 1


class TestSmallGraphEquivalence:
    """Below the bidirectional threshold results are bit-identical."""

    def test_bfs_identical(self, grid_graph):
        adjacency = grid_graph.adjacency()
        compact = grid_graph.compact()
        for target in range(9):
            assert bfs_shortest_path(adjacency, 0, target) == (
                bfs_shortest_path(compact, 0, target)
            )

    def test_bfs_blocked_identical(self, grid_graph):
        adjacency = grid_graph.adjacency()
        compact = grid_graph.compact()
        assert bfs_shortest_path(
            adjacency, 0, 8, blocked_nodes={1, 4}
        ) == bfs_shortest_path(compact, 0, 8, blocked_nodes={1, 4})

    def test_bfs_edge_ok_identical(self, grid_graph):
        adjacency = grid_graph.adjacency()
        compact = grid_graph.compact()

        def edge_ok(u, v):
            return (u, v) != (0, 1) and (u, v) != (3, 6)

        assert bfs_shortest_path(
            adjacency, 0, 8, edge_ok=edge_ok
        ) == bfs_shortest_path(compact, 0, 8, edge_ok=edge_ok)

    def test_yen_identical(self, grid_graph):
        adjacency = grid_graph.adjacency()
        compact = grid_graph.compact()
        assert yen_k_shortest_paths(adjacency, 0, 8, 6) == (
            yen_k_shortest_paths(compact, 0, 8, 6)
        )

    def test_edge_disjoint_identical(self, grid_graph):
        adjacency = grid_graph.adjacency()
        compact = grid_graph.compact()
        assert edge_disjoint_shortest_paths(adjacency, 0, 8, 3) == (
            edge_disjoint_shortest_paths(compact, 0, 8, 3)
        )

    def test_mixed_node_types(self):
        graph = grid_topology(2, 2)
        graph.add_channel(0, "hub", 10.0, 10.0)
        graph.add_channel("hub", 3, 10.0, 10.0)
        adjacency = graph.adjacency()
        compact = graph.compact()
        assert bfs_shortest_path(adjacency, 0, 3) == bfs_shortest_path(
            compact, 0, 3
        )
        assert yen_k_shortest_paths(adjacency, 0, 3, 4) == (
            yen_k_shortest_paths(compact, 0, 3, 4)
        )


class TestLargeGraphFastPath:
    """Above the threshold the bidirectional kernels take over: paths may
    tie-break differently but must have identical lengths and be valid."""

    @pytest.fixture(scope="class")
    def big(self):
        rng = random.Random(11)
        edges = barabasi_albert_edges(300, 3, rng)
        graph = build_channel_graph(edges, uniform_sampler(50, 100), rng)
        return graph.adjacency(), graph.compact()

    def test_threshold_engaged(self, big):
        _, compact = big
        assert compact.num_nodes >= CompactTopology.BIDIRECTIONAL_MIN_NODES
        assert compact._use_bidirectional()

    def test_bfs_lengths_and_validity(self, big):
        adjacency, compact = big
        rng = random.Random(5)
        for _ in range(50):
            a, b = rng.randrange(300), rng.randrange(300)
            slow = bfs_shortest_path(adjacency, a, b)
            fast = bfs_shortest_path(compact, a, b)
            assert (slow is None) == (fast is None)
            if fast is None:
                continue
            assert len(fast) == len(slow)
            assert fast[0] == a and fast[-1] == b
            assert all(v in adjacency[u] for u, v in zip(fast, fast[1:]))

    def test_bfs_deterministic(self, big):
        _, compact = big
        first = [bfs_shortest_path(compact, 0, t) for t in range(300)]
        second = [bfs_shortest_path(compact, 0, t) for t in range(300)]
        assert first == second

    def test_yen_lengths_unique_simple(self, big):
        adjacency, compact = big
        rng = random.Random(9)
        for _ in range(10):
            a, b = rng.randrange(300), rng.randrange(300)
            fast = yen_k_shortest_paths(compact, a, b, 4)
            slow = yen_k_shortest_paths(adjacency, a, b, 4)
            assert [len(p) for p in fast] == [len(p) for p in slow]
            assert len({tuple(p) for p in fast}) == len(fast)
            for path in fast:
                assert len(set(path)) == len(path)
                assert all(
                    v in adjacency[u] for u, v in zip(path, path[1:])
                )

    def test_blocked_target_is_unreachable(self, big):
        # Regression: the bidirectional kernel used to seed its backward
        # frontier at a blocked target and find a path anyway.
        adjacency, compact = big
        assert bfs_shortest_path(compact, 0, 9, blocked_nodes={9}) is None
        assert bfs_shortest_path(adjacency, 0, 9, blocked_nodes={9}) is None

    def test_blocked_source_stays_exempt(self, big):
        adjacency, compact = big
        slow = bfs_shortest_path(adjacency, 0, 9, blocked_nodes={0})
        fast = bfs_shortest_path(compact, 0, 9, blocked_nodes={0})
        assert slow is not None and fast is not None
        assert len(slow) == len(fast)

    def test_distances_match_mapping(self, big):
        adjacency, compact = big
        assert bfs_distances(compact, 17) == bfs_distances(adjacency, 17)
