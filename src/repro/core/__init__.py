"""Flash core: the paper's primary contribution."""

from repro.core.base import Router, RouterStats, RoutingOutcome
from repro.core.classifier import (
    StaticThresholdClassifier,
    StreamingQuantileClassifier,
)
from repro.core.fee_optimizer import (
    PaymentSplit,
    split_payment,
    split_payment_convex,
    split_payment_greedy,
    split_payment_lp,
)
from repro.core.flash import DEFAULT_K, DEFAULT_M, FlashRouter
from repro.core.maxflow import PathSearchResult, find_elephant_paths
from repro.core.mice import MiceRoutingResult, route_mice_payment
from repro.core.routing_table import RoutingTable, TableEntry

__all__ = [
    "DEFAULT_K",
    "DEFAULT_M",
    "FlashRouter",
    "MiceRoutingResult",
    "PathSearchResult",
    "PaymentSplit",
    "Router",
    "RouterStats",
    "RoutingOutcome",
    "RoutingTable",
    "StaticThresholdClassifier",
    "StreamingQuantileClassifier",
    "TableEntry",
    "find_elephant_paths",
    "route_mice_payment",
    "split_payment",
    "split_payment_convex",
    "split_payment_greedy",
    "split_payment_lp",
]
