"""Tests for the mice routing table."""

from repro.core.routing_table import RoutingTable


class TestLookup:
    def test_first_lookup_computes_m_paths(self, grid_graph):
        table = RoutingTable(m=4)
        entry = table.lookup(0, 8, grid_graph.adjacency())
        assert len(entry.paths) == 4
        assert all(p[0] == 0 and p[-1] == 8 for p in entry.paths)

    def test_recurring_lookup_is_cached(self, grid_graph):
        table = RoutingTable(m=4)
        adjacency = grid_graph.adjacency()
        first = table.lookup(0, 8, adjacency)
        second = table.lookup(0, 8, adjacency)
        assert first is second
        assert second.hits == 1
        assert table.hit_ratio == 0.5

    def test_disconnected_receiver_empty_entry(self, grid_graph):
        grid_graph.add_node(99)
        table = RoutingTable(m=4)
        entry = table.lookup(0, 99, grid_graph.adjacency())
        assert entry.paths == []

    def test_per_pair_entries(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency)
        table.lookup(8, 0, adjacency)
        assert len(table) == 2


class TestReplacement:
    def test_dead_path_replaced_with_next_shortest(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        entry = table.lookup(0, 8, adjacency)
        dead = entry.paths[0]
        replacement = table.replace_path(0, 8, dead, adjacency)
        assert replacement is not None
        assert replacement not in (dead,)
        assert dead not in entry.paths
        assert len(entry.paths) == 2

    def test_replacement_differs_from_existing(self, grid_graph):
        table = RoutingTable(m=3)
        adjacency = grid_graph.adjacency()
        entry = table.lookup(0, 8, adjacency)
        replacement = table.replace_path(0, 8, entry.paths[1], adjacency)
        assert replacement is not None
        assert len({tuple(p) for p in entry.paths}) == 3

    def test_exhausted_topology_drops_path(self, line_graph):
        table = RoutingTable(m=1)
        adjacency = line_graph.adjacency()
        entry = table.lookup(0, 3, adjacency)
        # A line has exactly one simple path: no replacement exists.
        assert table.replace_path(0, 3, entry.paths[0], adjacency) is None
        assert entry.paths == []

    def test_replace_unknown_pair_is_noop(self, grid_graph):
        table = RoutingTable(m=2)
        assert table.replace_path(0, 8, [0, 1, 8], grid_graph.adjacency()) is None


class TestMaintenance:
    def test_refresh_recomputes_entries(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        entry = table.lookup(0, 8, adjacency)
        # Channel 0-1 disappears; refresh must drop paths through it.
        grid_graph.remove_channel(0, 1)
        table.refresh(grid_graph.adjacency())
        assert all(path[1] == 3 for path in entry.paths)

    def test_ttl_eviction(self, grid_graph):
        table = RoutingTable(m=2, entry_ttl=100.0)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency, now=0.0)
        table.lookup(0, 5, adjacency, now=150.0)
        assert table.evict_stale(now=200.0) == 1
        assert (0, 8) not in table
        assert (0, 5) in table

    def test_infinite_ttl_never_evicts(self, grid_graph):
        table = RoutingTable(m=2)
        table.lookup(0, 8, grid_graph.adjacency(), now=0.0)
        assert table.evict_stale(now=1e12) == 0

    def test_max_entries_lru(self, grid_graph):
        table = RoutingTable(m=1, max_entries=2)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency, now=0.0)
        table.lookup(0, 5, adjacency, now=1.0)
        table.lookup(0, 7, adjacency, now=2.0)
        assert len(table) == 2
        assert (0, 8) not in table


class TestStructuralBfsLayer:
    """The per-source BFS tree shared across (src, dst) pairs."""

    def test_tree_shared_across_receivers(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency)
        table.lookup(0, 5, adjacency)
        table.lookup(0, 7, adjacency)
        # One tree for source 0, reused by every receiver.
        assert list(table._source_layers) == [0]

    def test_first_path_matches_bfs(self, grid_graph):
        from repro.network.paths import bfs_shortest_path

        table = RoutingTable(m=4)
        adjacency = grid_graph.adjacency()
        for receiver in (5, 7, 8):
            entry = table.lookup(0, receiver, adjacency)
            assert entry.paths[0] == bfs_shortest_path(adjacency, 0, receiver)

    def test_refresh_invalidates_trees(self, grid_graph):
        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency)
        grid_graph.remove_channel(0, 1)
        updated = grid_graph.adjacency()
        table.refresh(updated)
        entry = table.lookup(0, 8, updated)
        assert all(path[1] == 3 for path in entry.paths)

    def test_new_topology_object_recomputes_tree(self, grid_graph):
        table = RoutingTable(m=1)
        adjacency = grid_graph.adjacency()
        table.lookup(0, 8, adjacency)
        grid_graph.remove_channel(0, 1)
        # A *fresh* topology object (new token) must not reuse the tree.
        entry = table.lookup(0, 5, grid_graph.adjacency())
        assert all(path[1] == 3 for path in entry.paths)

    def test_compact_topology_token_uses_version(self, grid_graph):
        table = RoutingTable(m=2)
        compact = grid_graph.compact()
        table.lookup(0, 8, compact)
        layer = table._source_layers[0]
        assert layer.topology is compact
        assert layer.token == (compact.version, compact.num_slots)

    def test_lru_bound_interplay_with_structural_cache(self, grid_graph):
        # Entry eviction (max_entries) must not corrupt the shared tree:
        # a re-looked-up evicted pair recomputes the same paths.
        table = RoutingTable(m=2, max_entries=2)
        adjacency = grid_graph.adjacency()
        original = list(table.lookup(0, 8, adjacency, now=0.0).paths)
        table.lookup(0, 5, adjacency, now=1.0)
        table.lookup(0, 7, adjacency, now=2.0)  # evicts (0, 8)
        assert (0, 8) not in table
        recomputed = table.lookup(0, 8, adjacency, now=3.0)
        assert recomputed.paths == original
        assert recomputed.misses == 1
        assert len(table) == 2

    def test_replacement_consistent_with_seeded_yen(self, grid_graph):
        from repro.network.paths import yen_k_shortest_paths

        table = RoutingTable(m=2)
        adjacency = grid_graph.adjacency()
        entry = table.lookup(0, 8, adjacency)
        dead = entry.paths[0]
        replacement = table.replace_path(0, 8, dead, adjacency)
        ranked = yen_k_shortest_paths(adjacency, 0, 8, 3)
        assert replacement == ranked[2]


class TestSelectiveInvalidation:
    """apply_events: only the BFS layers/entries an event touched go."""

    @staticmethod
    def _close(a, b):
        from repro.network.dynamics import ChannelEvent, ChannelEventType

        return ChannelEvent(0.0, ChannelEventType.CLOSE, a, b)

    @staticmethod
    def _open(a, b):
        from repro.network.dynamics import ChannelEvent, ChannelEventType

        return ChannelEvent(0.0, ChannelEventType.OPEN, a, b, 10.0, 10.0)

    @staticmethod
    def _unused_edge(graph, parents):
        """A channel the BFS tree does not traverse."""
        for channel in graph.channels():
            a, b = channel.a, channel.b
            if parents.get(a) != b and parents.get(b) != a:
                return a, b
        raise AssertionError("grid trees never use every channel")

    def test_unrelated_close_keeps_layer_and_entries(self, grid_graph):
        table = RoutingTable(m=1)
        compact = grid_graph.compact()
        table.lookup(0, 1, compact)  # entry whose single path is 0-1
        layer = table._source_layers[0]
        a, b = self._unused_edge(grid_graph, layer.parents)
        assert {a, b} != {0, 1}
        grid_graph.remove_channel(a, b)
        refreshed = grid_graph.compact()
        assert refreshed is not compact
        dropped, recomputed = table.apply_events(
            [self._close(a, b)], refreshed
        )
        assert (dropped, recomputed) == (0, 0)
        survivor = table._source_layers[0]
        assert survivor.parents is layer.parents  # tree reused, not rebuilt
        assert survivor.topology is refreshed  # but re-stamped to validate
        assert table._source_tree(0, refreshed) is layer.parents

    def test_tree_edge_close_drops_layer_and_recomputes_entry(
        self, grid_graph
    ):
        table = RoutingTable(m=2)
        compact = grid_graph.compact()
        entry = table.lookup(0, 8, compact)
        layer = table._source_layers[0]
        # Close a channel the (0, 8) cached paths actually traverse.
        path = entry.paths[0]
        u, v = path[0], path[1]
        assert layer.parents.get(v) == u
        grid_graph.remove_channel(u, v)
        refreshed = grid_graph.compact()
        dropped, recomputed = table.apply_events(
            [self._close(u, v)], refreshed
        )
        assert dropped >= 1 and recomputed >= 1
        assert 0 not in table._source_layers or (
            table._source_layers[0].parents is not layer.parents
        )
        for new_path in table.lookup(0, 8, refreshed).paths:
            assert (u, v) not in zip(new_path, new_path[1:])

    def test_short_range_open_keeps_layer(self, grid_graph):
        table = RoutingTable(m=1)
        table.lookup(0, 8, grid_graph.compact())
        layer = table._source_layers[0]
        depths = layer.tree_depths()
        assert abs(depths[1] - depths[3]) <= 1  # both at depth 1
        grid_graph.add_channel(1, 3, 10.0, 10.0)
        refreshed = grid_graph.compact()
        dropped, recomputed = table.apply_events(
            [self._open(1, 3)], refreshed
        )
        assert (dropped, recomputed) == (0, 0)
        assert table._source_layers[0].parents is layer.parents

    def test_shortcut_open_drops_layer(self, grid_graph):
        table = RoutingTable(m=1)
        table.lookup(0, 8, grid_graph.compact())
        layer = table._source_layers[0]
        assert abs(layer.tree_depths()[0] - layer.tree_depths()[8]) > 1
        grid_graph.add_channel(0, 8, 10.0, 10.0)
        refreshed = grid_graph.compact()
        dropped, recomputed = table.apply_events(
            [self._open(0, 8)], refreshed
        )
        assert dropped == 1 and recomputed == 1
        entry = table.lookup(0, 8, refreshed)
        assert entry.paths[0] == [0, 8]  # the new shortcut is picked up

    def test_open_without_layer_recomputes_conservatively(self, grid_graph):
        table = RoutingTable(m=1)
        compact = grid_graph.compact()
        table.lookup(0, 8, compact)
        table.invalidate_structural_cache()  # simulate LRU eviction
        grid_graph.add_channel(0, 8, 10.0, 10.0)
        refreshed = grid_graph.compact()
        dropped, recomputed = table.apply_events(
            [self._open(0, 8)], refreshed
        )
        assert dropped == 0 and recomputed == 1
        assert table.lookup(0, 8, refreshed).paths[0] == [0, 8]

    def test_layerless_sender_recomputes_all_entries(self, line_graph):
        # Regression: recomputing a layerless sender's first entry
        # rebuilds its BFS layer as a side effect; that must not let
        # the sender's *other* entries dodge the conservative open
        # rule and keep stale non-shortest paths.
        line_graph.add_channel(3, 4, 100.0, 100.0)
        line_graph.add_channel(4, 5, 100.0, 100.0)  # line 0-1-2-3-4-5
        table = RoutingTable(m=1)
        compact = line_graph.compact()
        table.lookup(0, 4, compact)
        table.lookup(0, 5, compact)
        table.invalidate_structural_cache()  # simulate LRU eviction
        line_graph.add_channel(0, 4, 10.0, 10.0)  # shortcut
        refreshed = line_graph.compact()
        dropped, recomputed = table.apply_events(
            [self._open(0, 4)], refreshed
        )
        assert (dropped, recomputed) == (0, 2)
        assert table.lookup(0, 4, refreshed).paths[0] == [0, 4]
        assert table.lookup(0, 5, refreshed).paths[0] == [0, 4, 5]

    def test_empty_batch_restamps_only(self, grid_graph):
        table = RoutingTable(m=1)
        compact = grid_graph.compact()
        table.lookup(0, 8, compact)
        layer = table._source_layers[0]
        assert table.apply_events([], compact) == (0, 0)
        assert table._source_layers[0] is layer
