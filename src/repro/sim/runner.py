"""Multi-run experiment orchestration: seeds, sweeps, averaging.

The paper reports the average of 5 independent runs (§4.1).  A *scenario*
here is a callable building (graph, workload) from a seed; the runner
replays every scheme on identical scenarios and averages the metrics.

Both entry points select between the two simulation engines via
``engine="sequential"`` (default — :func:`repro.sim.engine.run_simulation`,
byte-identical to the pre-concurrent behaviour) and
``engine="concurrent"`` (:mod:`repro.sim.concurrent` — discrete-event
in-flight holds with latency/timeout metrics; knobs via
``engine_params``).  Registered scenarios may carry their own engine
default, which ``engine=None`` picks up; concurrent cells fold the
fully-resolved knob set into their store key (see :func:`cell_digest`),
while sequential cell keys are unchanged so existing stores resume.

Runs are independent by construction (each derives its RNGs from
``base_seed`` and its run index alone), so ``run_comparison`` and
``sweep`` accept an opt-in ``workers=N`` to fan the seeded runs out over
``multiprocessing`` fork workers.  Scenario factories and router
factories are typically closures, which do not pickle — the fork start
method sidesteps that by inheriting them through process memory, and the
per-run results (plain dataclasses of floats) pickle back.  Result order
is by run index regardless of completion order, so parallel metrics are
identical to serial ones.

Under the numpy kernel backend (``repro.network.compact.
set_default_backend("numpy")`` or ``--backend numpy``) the parallel path
additionally exports the working topology's CSR arrays into one
``multiprocessing.shared_memory`` segment before forking
(:mod:`repro.network.shared`): workers inherit the mapping and every
scheme copy whose adjacency digest matches adopts the arrays zero-copy
inside ``graph.compact()`` instead of re-interning O(V+E) Python state
per run.  Adoption is digest-gated, so results stay bit-identical with
or without it; the segment is unlinked when the pool drains, crashed
included (SIGKILL of the parent leaves it to the resource tracker).

Passing ``store=`` (an :class:`repro.eval.store.ExperimentStore`) makes
both entry points **write-through and resumable**: every completed
(scheme, run) cell is appended to the store as it finishes, and a
re-invocation with the same store skips every cell that is already
recorded — an interrupted sweep picks up where it died, and the merged
aggregates are float-identical to a clean serial run.  Parallel workers
append to per-process shard files that are merged (and deduplicated)
when the pool drains, so a killed pool still keeps its completed runs.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import zlib
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.network import compact as compact_backend
from repro.network import shared as shared_topology
from repro.network.dynamics import ChannelEvent, run_dynamic_simulation
from repro.network.graph import ChannelGraph
from repro.sim.engine import RouterFactory, run_simulation
from repro.sim.metrics import AveragedMetrics, SimulationResult, StoredResult
from repro.traces.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (eval -> sim)
    from repro.eval.store import ExperimentStore

#: What one seeded build yields: ``(graph, workload)``, or
#: ``(graph, workload, events)`` when the scenario includes topology
#: dynamics (the runner then interleaves churn events by timestamp via
#: :func:`repro.network.dynamics.run_dynamic_simulation`), or
#: ``(graph, workload, events, fault_plan)`` when it also carries a
#: compiled :class:`repro.sim.faults.FaultPlan` — the runner then
#: injects the adversarial events and attaches resilience metrics.
ScenarioBuild = (
    tuple[ChannelGraph, Workload]
    | tuple[ChannelGraph, Workload, list[ChannelEvent]]
    | tuple[ChannelGraph, Workload, list[ChannelEvent], object]
)

#: Builds the inputs for one seeded run.
ScenarioFactory = Callable[[random.Random], ScenarioBuild]

DEFAULT_RUNS = 5

#: The default reference mice fraction (paper: "90% of payments are
#: mice"); part of every store cell's parameter hash.
DEFAULT_MICE_FRACTION = 0.9


#: The engines :func:`run_comparison` accepts.
ENGINES: tuple[str, ...] = ("sequential", "concurrent")


def cell_digest(
    cell_params: Mapping[str, object] | None,
    reference_mice_fraction: float = DEFAULT_MICE_FRACTION,
    engine: str = "sequential",
    engine_params: Mapping[str, object] | None = None,
    mpp_params: Mapping[str, object] | None = None,
) -> tuple[dict[str, object], str]:
    """The ``(params, hash)`` a comparison's store cells are keyed by.

    Single source of truth for the hash recipe: :func:`run_comparison`
    keys its records through this, and readers (e.g. the report
    generator) must call it too rather than re-deriving the mapping —
    a recipe mismatch would silently select zero records.

    Concurrent cells fold the engine name and the **fully-resolved**
    knob set into the key (an omitted knob and its explicit default
    hash identically); sequential cells add nothing, so stores written
    before the concurrent engine existed still resume.  MPP-enabled
    cells (``mpp_params`` not ``None``) likewise fold the resolved
    :class:`~repro.sim.mpp.MppConfig` knob set under ``"mpp"``;
    MPP-free cells add nothing, keeping pre-MPP digests.
    """
    from repro.eval.store import params_hash

    params = dict(cell_params or {})
    params["reference_mice_fraction"] = reference_mice_fraction
    if engine != "sequential":
        from repro.sim.concurrent import ConcurrencyConfig

        params["engine"] = engine
        params["engine_params"] = ConcurrencyConfig.from_params(
            engine_params
        ).to_params()
    if mpp_params is not None:
        from repro.sim.mpp import MppConfig

        params["mpp"] = MppConfig.from_params(mpp_params).to_params()
    return params, params_hash(params)


def resolve_engine(
    scenario: "ScenarioFactory | str",
    engine: str | None,
    engine_params: Mapping[str, object] | None,
) -> tuple[str, dict[str, object]]:
    """The effective ``(engine, engine_params)`` for one comparison.

    ``engine=None`` defers to the registered scenario's default engine
    (plain ``"sequential"`` for factory callables).  A registered
    concurrent scenario's ``engine_params`` act as defaults under any
    explicitly passed ones, so CLI knobs override the catalog without
    discarding it.  Unknown engine names — and explicit engine
    parameters whose effective engine is sequential, which would
    otherwise be silently ignored — raise :class:`ValueError`.
    """
    scenario_engine = "sequential"
    scenario_params: dict[str, object] = {}
    if isinstance(scenario, str):
        from repro.scenarios import get_scenario

        registered = get_scenario(scenario)
        scenario_engine = registered.engine
        scenario_params = dict(registered.engine_params)
    resolved = engine if engine is not None else scenario_engine
    if resolved not in ENGINES:
        raise ValueError(
            f"unknown engine {resolved!r} (known: {', '.join(ENGINES)})"
        )
    if resolved == "sequential" and engine_params:
        raise ValueError(
            "engine parameters "
            f"{sorted(engine_params)} have no effect with "
            "engine='sequential'; pass engine='concurrent' to use them"
        )
    params: dict[str, object] = {}
    if resolved == "concurrent" and resolved == scenario_engine:
        params.update(scenario_params)
    params.update(dict(engine_params or {}))
    return resolved, params


def resolve_mpp(
    scenario: "ScenarioFactory | str",
    mpp_params: Mapping[str, object] | None,
) -> dict[str, object] | None:
    """The effective MPP knob mapping for one comparison, or ``None``.

    ``None`` disables MPP; any mapping (even ``{}``) enables it with
    the defaults of :class:`~repro.sim.mpp.MppConfig` underneath.
    ``mpp_params=None`` defers to the registered scenario's
    ``mpp_params`` (``None`` for factory callables); a registered
    MPP scenario's knobs act as defaults under any explicitly passed
    ones, mirroring :func:`resolve_engine`.
    """
    scenario_params: Mapping[str, object] | None = None
    if isinstance(scenario, str):
        from repro.scenarios import get_scenario

        scenario_params = get_scenario(scenario).mpp_params
    if mpp_params is None:
        return dict(scenario_params) if scenario_params is not None else None
    resolved = dict(scenario_params or {})
    resolved.update(dict(mpp_params))
    return resolved


def resolve_scenario(scenario: ScenarioFactory | str) -> ScenarioFactory:
    """Accept a factory callable or a registered scenario name.

    Strings are looked up in the :mod:`repro.scenarios` catalog (imported
    lazily so the runner stays usable without the registry); callables
    pass through unchanged.  Every runner entry point calls this, so
    ``run_comparison("ripple-default", ...)`` just works.
    """
    if isinstance(scenario, str):
        from repro.scenarios import get_scenario

        return get_scenario(scenario).factory()
    return scenario


@dataclass(frozen=True)
class ComparisonResult:
    """Averaged metrics for every scheme on a common scenario."""

    metrics: dict[str, AveragedMetrics]

    def __getitem__(self, scheme: str) -> AveragedMetrics:
        return self.metrics[scheme]

    def schemes(self) -> list[str]:
        """Scheme names in registration (table-row) order."""
        return list(self.metrics)


def _single_run(
    scenario: ScenarioFactory,
    factories: dict[str, RouterFactory],
    base_seed: int,
    reference_mice_fraction: float,
    run_index: int,
    engine: str = "sequential",
    engine_params: Mapping[str, object] | None = None,
    mpp_params: Mapping[str, object] | None = None,
    skip: set[str] | None = None,
    on_result: Callable[[str, SimulationResult], None] | None = None,
) -> dict[str, SimulationResult]:
    """One seeded replication: every scheme on the same graph/workload.

    Scenario factories may return ``(graph, workload)``,
    ``(graph, workload, events)``, or ``(graph, workload, events,
    fault_plan)``; with events present each scheme runs through the
    dynamic simulator (churn interleaved by timestamp, same event
    stream for every scheme), and a fault plan additionally injects its
    adversarial events and attaches resilience metrics.
    ``engine="concurrent"`` routes every scheme through
    :func:`repro.sim.concurrent.run_concurrent_simulation` instead
    (which handles events and faults natively); seeds are derived the
    same way for both engines.

    ``skip`` names schemes to leave out (they are already stored —
    safe because every scheme derives its RNG independently and gets
    its own graph copy, so skipping one cannot perturb another).
    ``on_result`` fires after each scheme completes — the write-through
    checkpoint hook, so a kill mid-run loses at most the scheme in
    flight rather than the whole run.
    """
    scenario_rng = random.Random(base_seed + 1_000_003 * run_index)
    built = scenario(scenario_rng)
    faults = None
    if len(built) == 4:
        graph, workload, events, faults = built
    elif len(built) == 3:
        graph, workload, events = built
    else:
        graph, workload = built
        events = None
    config = None
    if engine == "concurrent":
        from repro.sim.concurrent import ConcurrencyConfig

        config = ConcurrencyConfig.from_params(engine_params)
    mpp = None
    if mpp_params is not None:
        from repro.sim.mpp import MppConfig

        mpp = MppConfig.from_params(mpp_params)
    results: dict[str, SimulationResult] = {}
    for name, factory in factories.items():
        if skip and name in skip:
            continue
        name_salt = zlib.crc32(name.encode("utf-8")) % 7_919
        router_rng = random.Random(base_seed + 7_919 * run_index + name_salt)
        if config is not None:
            from repro.sim.concurrent import run_concurrent_simulation

            results[name] = run_concurrent_simulation(
                graph,
                factory,
                workload,
                rng=router_rng,
                config=config,
                events=events,
                reference_mice_fraction=reference_mice_fraction,
                faults=faults,
                mpp=mpp,
            )
        elif (
            events
            or faults is not None
            or getattr(graph, "fee_controller", None) is not None
        ):
            # A fee-market scenario's dynamics builder emits no churn
            # events — its "dynamics" is the controller attached to the
            # graph, ticked by the dynamic engine's gossip schedule.
            results[name] = run_dynamic_simulation(
                graph,
                factory,
                workload,
                events or [],
                rng=router_rng,
                reference_mice_fraction=reference_mice_fraction,
                faults=faults,
                mpp=mpp,
            )
        else:
            results[name] = run_simulation(
                graph,
                factory,
                workload,
                rng=router_rng,
                reference_mice_fraction=reference_mice_fraction,
                mpp=mpp,
            )
        if on_result is not None:
            on_result(name, results[name])
    return results


def _run_records(
    experiment: str,
    base_seed: int,
    run_index: int,
    digest: str,
    params: Mapping[str, object],
    results: Mapping[str, SimulationResult],
) -> list[dict]:
    """Store records for every scheme of one completed run."""
    from repro.eval.store import make_record

    return [
        make_record(
            experiment,
            name,
            base_seed,
            run_index,
            params,
            result.to_record(),
            digest=digest,
            router=result.scheme,
        )
        for name, result in results.items()
    ]


# Fork workers read their arguments from this module-level slot instead of
# pickled task payloads: scenario/router factories are closures, which the
# fork start method inherits for free but pickle rejects.  The lock covers
# the set-then-fork window so concurrent run_comparison calls from
# different threads cannot hand each other's state to their workers; once
# the pool's processes exist the slot no longer matters to them.
_FORK_STATE: tuple | None = None
_FORK_LOCK = threading.Lock()


def _forked_run(run_index: int) -> dict[str, SimulationResult]:
    assert _FORK_STATE is not None, "worker forked without runner state"
    (
        scenario,
        factories,
        base_seed,
        reference_mice_fraction,
        store_directory,
        experiment,
        digest,
        params,
        engine,
        engine_params,
        mpp_params,
    ) = _FORK_STATE
    results = _single_run(
        scenario,
        factories,
        base_seed,
        reference_mice_fraction,
        run_index,
        engine=engine,
        engine_params=engine_params,
        mpp_params=mpp_params,
    )
    if store_directory is not None:
        # Persist into a per-process shard before returning: if a later
        # task (or the parent) dies, this run survives on disk and a
        # resumed sweep will not recompute it.
        from repro.eval.store import ExperimentStore

        shard_store = ExperimentStore(store_directory)
        for record in _run_records(
            experiment, base_seed, run_index, digest, params, results
        ):
            shard_store.shard_append(os.getpid(), record)
    return results


def _export_shared_topology(
    scenario: ScenarioFactory,
    base_seed: int,
    run_index: int,
) -> "shared_topology.SharedTopologyHandle | None":
    """Export the run's *working-copy* topology for worker adoption.

    Only under the numpy backend.  The parent rebuilds the first
    pending run's scenario with that run's exact RNG derivation, takes
    the same deterministic :meth:`ChannelGraph.copy` each engine takes,
    and exports the copy's adjacency: every scheme copy in every worker
    whose adjacency digest matches (all of them, for seed-independent
    topologies) adopts the shared arrays inside ``graph.compact()``
    instead of re-interning.  Seed-dependent topologies digest-mismatch
    and build locally — sharing is an optimization, never a dependency.
    Any failure here (an exotic scenario, unpicklable probe, exhausted
    ``/dev/shm``) degrades to no sharing.
    """
    if compact_backend.get_default_backend() != "numpy":
        return None
    if not compact_backend.numpy_available():  # pragma: no cover - guard
        return None
    try:
        probe_rng = random.Random(base_seed + 1_000_003 * run_index)
        graph = scenario(probe_rng)[0]
        return shared_topology.export_topology(graph.copy().adjacency())
    except Exception:
        return None


def _run_parallel(
    scenario: ScenarioFactory,
    factories: dict[str, RouterFactory],
    run_indices: Sequence[int],
    base_seed: int,
    reference_mice_fraction: float,
    workers: int,
    store: "ExperimentStore | None" = None,
    experiment: str | None = None,
    digest: str | None = None,
    params: Mapping[str, object] | None = None,
    engine: str = "sequential",
    engine_params: Mapping[str, object] | None = None,
    mpp_params: Mapping[str, object] | None = None,
) -> list[dict[str, SimulationResult]] | None:
    """Fan runs out over fork workers; ``None`` if fork is unavailable."""
    global _FORK_STATE
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
    store_directory = str(store.directory) if store is not None else None
    shared_handle = _export_shared_topology(
        scenario, base_seed, run_indices[0]
    )
    if shared_handle is not None:
        # Installed before the fork so every worker inherits both the
        # handle and the parent's segment mapping — workers attach by
        # inheritance, not by name, and never pickle topology arrays.
        shared_topology.install(shared_handle)
    try:
        with _FORK_LOCK:
            _FORK_STATE = (
                scenario,
                factories,
                base_seed,
                reference_mice_fraction,
                store_directory,
                experiment,
                digest,
                params,
                engine,
                engine_params,
                mpp_params,
            )
            try:
                pool = context.Pool(processes=min(workers, len(run_indices)))
            finally:
                _FORK_STATE = None
        with pool:
            return pool.map(_forked_run, run_indices, chunksize=1)
    finally:
        # Unlink the shared segment even when a task raised, pool
        # creation failed, or the pool was interrupted; likewise merge
        # shards written by completed workers into durable records.
        if shared_handle is not None:
            shared_topology.clear()
            shared_handle.destroy()
        if store is not None:
            store.merge_shards()


def run_comparison(
    scenario: ScenarioFactory | str,
    factories: dict[str, RouterFactory],
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
    reference_mice_fraction: float = DEFAULT_MICE_FRACTION,
    workers: int | None = None,
    store: "ExperimentStore | None" = None,
    experiment: str | None = None,
    cell_params: Mapping[str, object] | None = None,
    engine: str | None = None,
    engine_params: Mapping[str, object] | None = None,
    mpp_params: Mapping[str, object] | None = None,
) -> ComparisonResult:
    """Average each scheme over ``runs`` seeded replications.

    ``scenario`` is a factory callable or a registered scenario name
    (see :func:`resolve_scenario`).  Every scheme within a run sees the
    *same* graph copy and workload, so differences are attributable to
    routing alone.  ``workers=N`` (N > 1) executes the seeded runs in N
    parallel processes; seeds, result order, and therefore every
    averaged metric are identical to the serial path.

    ``engine``/``engine_params`` select the simulation engine (see
    :func:`resolve_engine`): ``None`` uses the registered scenario's
    default, ``"concurrent"`` runs the discrete-event in-flight-hold
    engine with the given :class:`~repro.sim.concurrent.ConcurrencyConfig`
    knobs.

    ``store`` persists every (scheme, run) cell as it completes and
    **skips cells the store already holds**, making re-invocations
    resumable.  Cells are keyed by ``experiment`` (defaults to the
    scenario name when ``scenario`` is a registered name), the scheme
    name, ``base_seed``, the run index, and a hash of ``cell_params``
    (include anything that changes the scenario's behaviour — overrides,
    swept values — so different configurations never collide); the
    engine and its resolved knobs are folded into that hash for
    concurrent runs automatically, and the resolved MPP knobs likewise
    when MPP is enabled (``mpp_params`` mapping, or a registered
    scenario default — see :func:`resolve_mpp`).
    """
    if runs <= 0:
        raise ValueError(f"runs must be positive, got {runs}")
    if workers is not None and workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if store is not None and experiment is None:
        if not isinstance(scenario, str):
            raise ValueError(
                "run_comparison(store=...) needs experiment= to key the "
                "records when the scenario is a callable"
            )
        experiment = scenario
    engine, engine_params = resolve_engine(scenario, engine, engine_params)
    mpp_params = resolve_mpp(scenario, mpp_params)
    scenario = resolve_scenario(scenario)

    digest = ""
    params: dict[str, object] = {}
    stored: dict[str, dict] = {}
    if store is not None:
        from repro.eval.store import cell_id

        params, digest = cell_digest(
            cell_params,
            reference_mice_fraction,
            engine=engine,
            engine_params=engine_params,
            mpp_params=mpp_params,
        )
        # Fold in shards orphaned by a killed parent (the pool's own
        # merge in `finally` never ran), so those completed runs count
        # as done instead of being recomputed.
        store.merge_shards()
        stored = store.load()

        def _cell(name: str, run_index: int) -> str:
            return cell_id(experiment, name, base_seed, run_index, digest)

        pending = [
            index
            for index in range(runs)
            if any(_cell(name, index) not in stored for name in factories)
        ]
    else:
        pending = list(range(runs))

    fresh: dict[int, dict[str, SimulationResult]] = {}
    if pending:
        parallel_results = None
        if workers is not None and workers > 1 and len(pending) > 1:
            parallel_results = _run_parallel(
                scenario,
                factories,
                pending,
                base_seed,
                reference_mice_fraction,
                workers,
                store=store,
                experiment=experiment,
                digest=digest,
                params=params,
                engine=engine,
                engine_params=engine_params,
                mpp_params=mpp_params,
            )
        if parallel_results is not None:
            fresh = dict(zip(pending, parallel_results))
        else:
            for run_index in pending:
                # Scheme-granular resume: skip schemes already stored for
                # this run and checkpoint each fresh scheme the moment it
                # finishes, so a kill mid-run loses only the scheme in
                # flight.  Safe because every scheme derives its RNG
                # independently and simulates its own graph copy.
                done = (
                    {
                        name
                        for name in factories
                        if _cell(name, run_index) in stored
                    }
                    if store is not None
                    else set()
                )

                def _checkpoint(
                    name: str,
                    result: SimulationResult,
                    run_index: int = run_index,
                ) -> None:
                    if store is None:
                        return
                    for record in _run_records(
                        experiment,
                        base_seed,
                        run_index,
                        digest,
                        params,
                        {name: result},
                    ):
                        if record["cell"] not in stored:
                            store.append(record)
                            stored[record["cell"]] = record

                results = _single_run(
                    scenario,
                    factories,
                    base_seed,
                    reference_mice_fraction,
                    run_index,
                    engine=engine,
                    engine_params=engine_params,
                    mpp_params=mpp_params,
                    skip=done,
                    on_result=_checkpoint,
                )
                fresh[run_index] = results

    per_scheme: dict[str, list] = {name: [] for name in factories}
    for run_index in range(runs):
        for name in factories:
            result = fresh.get(run_index, {}).get(name)
            if result is not None:
                per_scheme[name].append(result)
            else:
                record = stored[_cell(name, run_index)]
                per_scheme[name].append(
                    StoredResult.from_record(
                        record.get("router", name), record["metrics"]
                    )
                )
    return ComparisonResult(
        metrics={
            name: AveragedMetrics.of(results)
            for name, results in per_scheme.items()
        }
    )


def sweep(
    values: Sequence,
    scenario_for: Callable[[object], ScenarioFactory],
    factories: dict[str, RouterFactory],
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
    workers: int | None = None,
    store: "ExperimentStore | None" = None,
    experiment: str | None = None,
    cell_params: Mapping[str, object] | None = None,
    engine: str | None = None,
    engine_params: Mapping[str, object] | None = None,
    engine_params_for: Callable[[object], Mapping[str, object]] | None = None,
    mpp_params: Mapping[str, object] | None = None,
    mpp_params_for: Callable[[object], Mapping[str, object]] | None = None,
) -> dict[str, list[AveragedMetrics]]:
    """Run a parameter sweep: one comparison per value.

    Returns ``{scheme: [AveragedMetrics per swept value]}`` — exactly the
    series shape of the paper's line plots (Figs 6, 7, 10, 11).
    ``scenario_for`` may return a factory callable *or* a registered
    scenario name per value; ``workers``, ``engine``, and
    ``engine_params`` are forwarded to every :func:`run_comparison`.
    ``engine_params_for`` makes the *engine* itself sweepable (the
    concurrency axes: load, timeout, ...): when given, it maps each
    swept value to that comparison's engine knobs, overriding
    ``engine_params``.  ``mpp_params``/``mpp_params_for`` do the same
    for the multi-part payment knobs (the ``mpp.*`` axes).

    With ``store`` the sweep is **resumable**: each swept value's cells
    carry the value inside their parameter hash, so re-invoking an
    interrupted sweep over the same store recomputes only the missing
    cells and reproduces the completed ones float-exactly from disk.
    ``experiment`` keys the records (required when ``scenario_for``
    returns callables rather than registered names).
    """
    series: dict[str, list[AveragedMetrics]] = {name: [] for name in factories}
    for value in values:
        scenario = scenario_for(value)
        label = experiment
        if label is None and isinstance(scenario, str):
            label = scenario
        value_params: dict[str, object] | None = None
        if store is not None:
            value_params = {**dict(cell_params or {}), "sweep_value": value}
        comparison = run_comparison(
            scenario,
            factories,
            runs=runs,
            base_seed=base_seed,
            workers=workers,
            store=store,
            experiment=label,
            cell_params=value_params,
            engine=engine,
            engine_params=engine_params_for(value)
            if engine_params_for is not None
            else engine_params,
            mpp_params=mpp_params_for(value)
            if mpp_params_for is not None
            else mpp_params,
        )
        for name in factories:
            series[name].append(comparison[name])
    return series
