"""Cross-layer conservation invariants for fee-aware execution.

The fee arithmetic is property-tested in isolation
(``tests/core/test_fee_arithmetic.py``); this module checks that the
*execution* layers respect it — that escrow, settle, and the engines
move exactly the funds the arithmetic says, end to end:

* a committed payment debits the sender by ``amounts[0]``, credits the
  receiver with the delivered amount, and pays each intermediary its
  :func:`fee_breakdown` share — exactly, at channel-balance level;
* an aborted reservation restores every balance bit-for-bit;
* whole simulations conserve total channel funds (fees move money
  between nodes, they never mint or burn it), under both engines;
* fee metrics are internally consistent (``fee_paid_total`` is the sum
  of successful records' fees; no single node earns more than all
  senders paid);
* fee-free runs carry **no** fee metrics — their records serialize
  byte-identically to the pre-fee library (the golden-pin guarantee).
"""

from __future__ import annotations

import random

import pytest

from repro.network.fees import ChannelPolicy
from repro.network.feemarket import FeeMarketController, assign_market_policies
from repro.network.graph import ChannelGraph
from repro.network.view import NetworkView
from repro.sim.concurrent import ConcurrencyConfig, run_concurrent_simulation
from repro.sim.engine import run_simulation
from repro.sim.factories import shortest_path_factory
from repro.sim.metrics import FEE_METRIC_FIELDS
from repro.traces.generators import generate_ripple_workload
from repro.traces.workload import Transaction, Workload


def _total_funds(graph: ChannelGraph) -> float:
    return sum(
        channel.balance(*channel.endpoints())
        + channel.balance(*reversed(channel.endpoints()))
        for channel in graph.channels()
    )


def _node_funds(graph: ChannelGraph, node) -> float:
    return sum(graph.balance(node, peer) for peer in graph.neighbors(node))


def _priced_line() -> ChannelGraph:
    graph = ChannelGraph()
    graph.add_channel("a", "b", 100.0, 100.0)
    graph.add_channel("b", "c", 100.0, 100.0)
    graph.add_channel("c", "d", 100.0, 100.0)
    graph.set_channel_policy(
        "b", "c", ChannelPolicy(base_fee=0.5, fee_rate=0.1)
    )
    graph.set_channel_policy("c", "d", ChannelPolicy(fee_rate=0.05))
    return graph


class TestEscrowConservation:
    def test_commit_pays_exact_breakdown(self):
        graph = _priced_line()
        path = ["a", "b", "c", "d"]
        amount = 10.0
        amounts = graph.path_hop_amounts(path, amount)
        breakdown = graph.path_fee_breakdown(path, amount)
        before = {node: _node_funds(graph, node) for node in path}
        view = NetworkView(graph)
        with view.open_session() as session:
            assert session.try_reserve(path, amount)
            session.commit()
        # Sender pays delivered + fees; receiver gets the delivered
        # amount; each intermediary pockets exactly its breakdown share.
        assert _node_funds(graph, "a") == before["a"] - amounts[0]
        assert _node_funds(graph, "d") == before["d"] + amount
        for node in ("b", "c"):
            assert _node_funds(graph, node) == pytest.approx(
                before[node] + breakdown.get(node, 0.0), abs=1e-12
            )
        assert sum(breakdown.values()) == pytest.approx(
            amounts[0] - amount, abs=1e-12
        )

    def test_abort_restores_balances(self):
        graph = _priced_line()
        path = ["a", "b", "c", "d"]
        snapshot = {
            (u, v): graph.balance(u, v)
            for u in path
            for v in graph.neighbors(u)
        }
        view = NetworkView(graph)
        with view.open_session() as session:
            assert session.try_reserve(path, 10.0)
            session.abort()
        for (u, v), balance in snapshot.items():
            assert graph.balance(u, v) == balance

    def test_infeasible_reserve_rolls_back(self):
        graph = _priced_line()
        # 100 delivered compounds past the b->c balance; nothing sticks.
        snapshot = _total_funds(graph)
        view = NetworkView(graph)
        with view.open_session() as session:
            assert not session.try_reserve(["a", "b", "c", "d"], 99.0)
        assert _total_funds(graph) == snapshot


def _priced_scenario(rng: random.Random):
    from repro.network.topology import barabasi_albert_edges, build_channel_graph
    from repro.network.topology import uniform_sampler

    edges = barabasi_albert_edges(60, 2, rng)
    graph = build_channel_graph(edges, uniform_sampler(80.0, 200.0), rng)
    assign_market_policies(graph, rng, initial_rate=0.01, paper_mix=True)
    return graph


class TestRunConservation:
    @pytest.mark.parametrize("seed", range(3))
    def test_sequential_run_conserves_funds(self, seed):
        rng = random.Random(2_000 + seed)
        graph = _priced_scenario(rng)
        workload = generate_ripple_workload(rng, graph.nodes, 80)
        working = graph.copy()
        funds_before = _total_funds(working)
        result = run_simulation(
            working,
            shortest_path_factory(),
            workload,
            rng=random.Random(1),
            copy_graph=False,
        )
        assert _total_funds(working) == pytest.approx(
            funds_before, rel=1e-12
        )
        assert result.fees
        successful = [r for r in result.records if r.success]
        assert result.fees["fee_paid_total"] == pytest.approx(
            sum(r.fee for r in successful)
        )
        # No node can earn more than all senders paid together.
        assert (
            result.fees["hub_revenue"]
            <= result.fees["fee_paid_total"] + 1e-9
        )
        if successful:
            assert result.fees["fee_p50"] >= 0.0

    @pytest.mark.parametrize("seed", range(2))
    def test_concurrent_run_conserves_funds(self, seed):
        rng = random.Random(3_000 + seed)
        graph = _priced_scenario(rng)
        graph.fee_controller = FeeMarketController(sensitivity=6.0)
        workload = generate_ripple_workload(rng, graph.nodes, 60)
        funds_before = _total_funds(graph)
        result = run_concurrent_simulation(
            graph,
            shortest_path_factory(),
            workload,
            rng=random.Random(1),
            config=ConcurrencyConfig(load=40.0),
        )
        # The engine copies; the input graph is untouched and the copy
        # (in-flight holds all resolved) conserved its funds.
        assert _total_funds(graph) == funds_before
        assert result.fees
        assert (
            result.fees["hub_revenue"]
            <= result.fees["fee_paid_total"] + 1e-9
        )


class TestFeeFreeRunsStayPinned:
    def test_no_fee_metrics_without_policies(self):
        rng = random.Random(11)
        from repro.network.topology import grid_topology

        graph = grid_topology(5, 5, balance=60.0)
        workload = generate_ripple_workload(rng, graph.nodes, 30)
        result = run_simulation(
            graph, shortest_path_factory(), workload, rng=random.Random(1)
        )
        assert result.fees == {}
        record = result.to_record()
        for field in FEE_METRIC_FIELDS:
            assert field not in record

    def test_stored_result_roundtrip_both_shapes(self):
        # Records written before the fee layer existed (no fee keys)
        # must keep loading — fee metrics default to 0 — while priced
        # records round-trip their fee metrics exactly.  This is what
        # keeps old store directories resumable.
        from repro.sim.metrics import StoredResult

        rng = random.Random(21)
        priced = _priced_scenario(rng)
        workload = generate_ripple_workload(rng, priced.nodes, 40)
        result = run_simulation(
            priced, shortest_path_factory(), workload, rng=random.Random(1)
        )
        assert result.fees
        restored = StoredResult.from_record("sp", result.to_record())
        assert restored.fee_paid_total == result.fees["fee_paid_total"]
        assert restored.fee_p50 == result.fees["fee_p50"]
        assert restored.hub_revenue == result.fees["hub_revenue"]

        legacy = {
            key: value
            for key, value in result.to_record().items()
            if key not in FEE_METRIC_FIELDS
        }
        pre_fee = StoredResult.from_record("sp", legacy)
        assert pre_fee.fee_paid_total == 0.0
        assert pre_fee.fee_p50 == 0.0
        assert pre_fee.hub_revenue == 0.0

    def test_single_transaction_record_shape(self):
        # A degenerate but valid workload keeps the fee-free record
        # schema stable even at the edges.
        graph = ChannelGraph()
        graph.add_channel("a", "b", 50.0, 50.0)
        workload = Workload([Transaction(0, "a", "b", 5.0, 0.0)])
        result = run_simulation(
            graph, shortest_path_factory(), workload, rng=random.Random(1)
        )
        assert result.fees == {}
        assert set(FEE_METRIC_FIELDS).isdisjoint(result.to_record())
