"""Tests for the experiment CLI (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.topology == "ripple"
        assert args.scale == 10.0


class TestAnalyze:
    def test_prints_both_figures(self, capsys):
        code = main(["analyze", "--samples", "2000", "--days", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Ripple" in out and "recurring" in out


class TestSimulate:
    def test_runs_small_comparison(self, capsys):
        code = main(["simulate", "--transactions", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Flash" in out and "Spider" in out
        assert "succ. ratio" in out


class TestTestbed:
    def test_runs_small_testbed(self, capsys):
        code = main(
            ["testbed", "--nodes", "16", "--transactions", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "normalized delay" in out


class TestFigure:
    def test_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "Bitcoin" in capsys.readouterr().out

    def test_fig8_small(self, capsys):
        code = main(
            ["figure", "fig8", "--transactions", "40", "--runs", "1"]
        )
        assert code == 0
        assert "Flash savings" in capsys.readouterr().out

    def test_ablation_order_small(self, capsys):
        code = main(
            ["figure", "ablation-order", "--transactions", "40", "--runs", "1"]
        )
        assert code == 0
        assert "mice path order" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
