"""Fig 4: recurrence of transactions in 24-hour windows.

Paper: median 86% of a day's transactions are recurring (Fig 4a); an
average user's top-5 receivers take >= 70% of its payments (Fig 4b).
Paper scale is 1,306 days; the bench analyzes 60 synthetic days.
"""

from _common import once, save_result

from repro.eval import fig4_recurrence


def test_fig4_recurrence(benchmark):
    result = once(
        benchmark,
        lambda: fig4_recurrence(
            days=60, transactions_per_day=1_000, n_nodes=500, seed=0
        ),
    )
    save_result("fig04", "Fig 4 - recurring transactions", result.format())
    # Fig 4a: most transactions recur within the day (paper median: 86%).
    assert result.median_recurring_fraction > 0.70
    # Fig 4b: a user's top-5 receivers dominate (paper: >= 70%).
    assert result.median_top5_share > 0.70
    assert result.days >= 59
