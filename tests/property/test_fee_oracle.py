"""Brute-force differential oracle for the cheapest-feasible-path kernel.

:meth:`CompactTopology.cheapest_path_idx` is a backward Dijkstra over
the BOLT #7 fee recursion with per-edge htlc feasibility pruning — the
kind of kernel whose bugs (wrong fee association, off-by-one hop
charging, pruning the wrong direction's bounds) produce *plausible*
paths that are silently not the cheapest.  This suite pins it against
an oracle that cannot be subtly wrong: enumerate **every** simple path
on seeded random graphs small enough to exhaust (≤ 12 nodes), price
each with the same arithmetic :func:`hop_amounts` defines, and take the
minimum under the kernel's documented tie-break — (send total, hop
count, lexicographic dense-index path).

Checked per trial, under both kernel backends:

* the kernel finds a path iff the oracle does;
* path, send total, and tie-break winner match the oracle **exactly**
  (floats compared with ``==``: same association ⇒ same bits);
* the python and numpy kernels agree bit-for-bit with each other;
* amounts straddle the drawn ``htlc_min``/``htlc_max`` boundaries, so
  both prune branches are exercised (feasible and infeasible edges).

Everything is seeded stdlib :mod:`random`; any failure replays from its
seed.
"""

from __future__ import annotations

import random

import pytest

from repro.network.compact import CompactTopology, numpy_available
from repro.network.fees import ChannelPolicy
from repro.network.graph import ChannelGraph
from repro.network.paths import cheapest_path

BACKENDS = ("python", "numpy") if numpy_available() else ("python",)

#: Amounts chosen to straddle the htlc boundary values drawn in
#: :func:`_random_priced_graph` (hmin ∈ {0, 2, 5, 10}, hmax ∈
#: {8, 20, inf}): below every bound, between them, on them, above them.
AMOUNTS = (1.0, 2.0, 5.0, 8.0, 10.0, 12.5, 20.0, 25.0)


def _random_priced_graph(rng: random.Random) -> ChannelGraph:
    """A connected ≤12-node graph with random per-direction policies."""
    n = rng.randint(4, 12)
    nodes = [f"n{i}" for i in range(n)]
    graph = ChannelGraph()
    for i in range(1, n):
        j = rng.randrange(i)
        graph.add_channel(
            nodes[i], nodes[j], rng.uniform(40, 100), rng.uniform(40, 100)
        )
    for _ in range(rng.randint(0, n)):
        a, b = rng.sample(nodes, 2)
        if not graph.has_channel(a, b):
            graph.add_channel(a, b, rng.uniform(40, 100), rng.uniform(40, 100))
    for channel in graph.channels():
        a, b = channel.endpoints()
        for src, dst in ((a, b), (b, a)):
            if rng.random() < 0.25:
                continue  # leave some directions at the default policy
            hmin = rng.choice([0.0, 0.0, 2.0, 5.0, 10.0])
            hmax = rng.choice(
                [float("inf"), float("inf"), 20.0, max(hmin, 8.0)]
            )
            graph.set_channel_policy(
                src,
                dst,
                ChannelPolicy(
                    base_fee=rng.choice([0.0, 0.1, 0.5, 1.0]),
                    fee_rate=rng.choice([0.0, 0.001, 0.01, 0.05]),
                    htlc_min=hmin,
                    htlc_max=hmax,
                ),
            )
    return graph


def _snapshot(graph: ChannelGraph, backend: str) -> CompactTopology:
    snapshot = CompactTopology.from_adjacency(
        graph.adjacency(), backend=backend
    )
    snapshot.install_policies(
        graph.channel_policy, version=graph.policy_version
    )
    return snapshot


def _price(graph: ChannelGraph, path: list, amount: float) -> float | None:
    """Send total of one candidate path — or None when htlc-infeasible.

    Mirrors the kernel's pricing *exactly*: the fee of each edge is
    computed first and then added (the float association bit-identity
    depends on), the sender's own edge charges nothing, ``htlc_min`` is
    checked against the delivered amount and ``htlc_max`` against the
    amount the edge actually carries.
    """
    carried = amount
    for j in range(len(path) - 2, -1, -1):
        policy = graph.channel_policy(path[j], path[j + 1])
        if amount < policy.htlc_min or carried > policy.htlc_max:
            return None
        if j > 0 and carried > 0.0:
            fee = policy.base_fee + policy.fee_rate * carried
            carried = carried + fee
    return carried


def _oracle(
    graph: ChannelGraph,
    snapshot: CompactTopology,
    source,
    target,
    amount: float,
) -> tuple[float, int, tuple[int, ...], list] | None:
    """Exhaustive minimum over every simple path, kernel tie-break."""
    index = {node: snapshot.index_of(node) for node in graph.nodes}
    best = None
    stack = [(source, [source])]
    while stack:
        node, path = stack.pop()
        if node == target:
            total = _price(graph, path, amount)
            if total is None:
                continue
            key = (
                total,
                len(path) - 1,
                tuple(index[step] for step in path),
            )
            if best is None or key < best[:3]:
                best = (*key, path)
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in path:
                stack.append((neighbor, path + [neighbor]))
    return best


class TestCheapestPathOracle:
    """Kernel == enumerate-all-paths on every (backend, seed, amount)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_brute_force(self, backend, seed):
        rng = random.Random(900_000 + seed)
        graph = _random_priced_graph(rng)
        snapshot = _snapshot(graph, backend)
        nodes = graph.nodes
        for amount in AMOUNTS:
            source, target = rng.sample(nodes, 2)
            # graph.compact() installs policies itself; it must agree
            # with the explicitly-installed snapshot.
            found = cheapest_path(graph.compact(), source, target, amount)
            kernel = cheapest_path(snapshot, source, target, amount)
            assert found == kernel
            expected = _oracle(graph, snapshot, source, target, amount)
            if expected is None:
                assert kernel is None
                continue
            total, hops, _, path = expected
            assert kernel is not None
            assert kernel[0] == path
            assert kernel[1] == total  # exact: same float association
            assert len(kernel[0]) - 1 == hops

    @pytest.mark.skipif(
        len(BACKENDS) < 2, reason="numpy is not installed"
    )
    @pytest.mark.parametrize("seed", range(25))
    def test_backends_bit_identical(self, seed):
        rng = random.Random(950_000 + seed)
        graph = _random_priced_graph(rng)
        py = _snapshot(graph, "python")
        np_ = _snapshot(graph, "numpy")
        nodes = graph.nodes
        for amount in AMOUNTS:
            source, target = rng.sample(nodes, 2)
            assert cheapest_path(py, source, target, amount) == cheapest_path(
                np_, source, target, amount
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_htlc_boundaries_are_inclusive(self, backend):
        # One hand-built corridor pinning the boundary semantics the
        # fuzz relies on: delivering exactly htlc_min and carrying
        # exactly htlc_max are both feasible; one ulp past either isn't
        # routable on this single-path graph.
        graph = ChannelGraph()
        graph.add_channel("a", "b", 100.0, 100.0)
        graph.add_channel("b", "c", 100.0, 100.0)
        graph.set_channel_policy(
            "b", "c", ChannelPolicy(htlc_min=5.0, htlc_max=10.0)
        )
        snapshot = _snapshot(graph, backend)
        assert cheapest_path(snapshot, "a", "c", 5.0) is not None
        assert cheapest_path(snapshot, "a", "c", 10.0) is not None
        assert cheapest_path(snapshot, "a", "c", 4.999999) is None
        assert cheapest_path(snapshot, "a", "c", 10.000001) is None
