"""Seeded property tests for the BOLT #7 fee arithmetic.

:func:`hop_amounts` is the single definition of "what a path costs" —
the routing kernels, the escrow layer, the fee optimizer, and the
metrics all reduce to it.  These properties pin its algebra on random
policy vectors so a refactor of any consumer can lean on the shared
contract:

* zero policies cost exactly zero (bit-exact, not approximately);
* the sender's own edge never charges;
* the backward recursion matches its definition hop by hop, with the
  exact float association (fee computed first, then added);
* per-hop fees telescope to the total fee, and the total is monotone
  non-decreasing in the delivered amount;
* :func:`fee_breakdown` conserves: intermediaries pocket exactly what
  the sender overpays, nothing is minted or burned;
* :meth:`ChannelGraph.path_fee` compounds on policy-aware graphs and
  keeps the legacy flat sum on policy-free ones.
"""

from __future__ import annotations

import random

import pytest

from repro.network.fees import (
    DEFAULT_POLICY,
    ChannelPolicy,
    fee_breakdown,
    hop_amounts,
)
from repro.network.graph import ChannelGraph, assign_uniform_fees


def _random_policies(
    rng: random.Random, hops: int
) -> list[ChannelPolicy]:
    return [
        ChannelPolicy(
            base_fee=rng.choice([0.0, 0.05, 0.5, 2.0]),
            fee_rate=rng.choice([0.0, 0.001, 0.01, 0.1]),
        )
        for _ in range(hops)
    ]


class TestHopAmounts:
    def test_zero_policies_cost_exactly_zero(self):
        for hops in range(1, 6):
            amounts = hop_amounts([DEFAULT_POLICY] * hops, 37.5)
            assert amounts == [37.5] * hops

    def test_sender_edge_charges_nothing(self):
        # A direct payment has only the sender's own edge — no fee,
        # whatever that edge's policy says.
        policy = ChannelPolicy(base_fee=5.0, fee_rate=0.5)
        assert hop_amounts([policy], 10.0) == [10.0]

    @pytest.mark.parametrize("seed", range(20))
    def test_recursion_matches_definition(self, seed):
        rng = random.Random(1_100 + seed)
        policies = _random_policies(rng, rng.randint(1, 8))
        amount = rng.choice([0.5, 10.0, 500.0])
        amounts = hop_amounts(policies, amount)
        assert len(amounts) == len(policies)
        assert amounts[-1] == amount
        for i in range(1, len(policies)):
            # Exact, including association: fee first, then one add.
            assert amounts[i - 1] == amounts[i] + policies[i].fee(amounts[i])

    @pytest.mark.parametrize("seed", range(20))
    def test_hop_fees_telescope_to_total(self, seed):
        rng = random.Random(1_200 + seed)
        policies = _random_policies(rng, rng.randint(2, 8))
        amount = rng.choice([1.0, 42.0, 900.0])
        amounts = hop_amounts(policies, amount)
        per_hop = [
            amounts[i - 1] - amounts[i] for i in range(1, len(amounts))
        ]
        assert all(fee >= 0.0 for fee in per_hop)
        assert sum(per_hop) == pytest.approx(
            amounts[0] - amount, rel=1e-12, abs=1e-12
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_total_monotone_in_amount(self, seed):
        rng = random.Random(1_300 + seed)
        policies = _random_policies(rng, rng.randint(1, 8))
        totals = [
            hop_amounts(policies, amount)[0]
            for amount in (0.1, 1.0, 10.0, 100.0, 1000.0)
        ]
        assert totals == sorted(totals)


class TestFeeBreakdown:
    @pytest.mark.parametrize("seed", range(20))
    def test_conservation_no_minting(self, seed):
        rng = random.Random(1_400 + seed)
        hops = rng.randint(2, 8)
        path = [f"n{i}" for i in range(hops + 1)]
        policies = _random_policies(rng, hops)
        amount = rng.choice([1.0, 42.0, 900.0])
        amounts = hop_amounts(policies, amount)
        breakdown = fee_breakdown(path, policies, amount)
        # Only intermediaries can earn; the sender overpays exactly
        # what the intermediaries collectively pocket.
        assert set(breakdown) <= set(path[1:-1])
        assert all(earned > 0.0 for earned in breakdown.values())
        assert sum(breakdown.values()) == pytest.approx(
            amounts[0] - amount, rel=1e-12, abs=1e-12
        )

    def test_zero_fee_entries_omitted(self):
        path = ["a", "b", "c", "d"]
        policies = [
            DEFAULT_POLICY,
            ChannelPolicy(base_fee=1.0),
            DEFAULT_POLICY,
        ]
        breakdown = fee_breakdown(path, policies, 10.0)
        assert breakdown == {"b": 1.0}


class TestGraphPathFee:
    def _line(self) -> ChannelGraph:
        graph = ChannelGraph()
        graph.add_channel("a", "b", 100.0, 100.0)
        graph.add_channel("b", "c", 100.0, 100.0)
        graph.add_channel("c", "d", 100.0, 100.0)
        return graph

    def test_policy_aware_fee_compounds(self):
        graph = self._line()
        graph.set_channel_policy("b", "c", ChannelPolicy(fee_rate=0.1))
        graph.set_channel_policy("c", "d", ChannelPolicy(fee_rate=0.1))
        path = ["a", "b", "c", "d"]
        # c forwards 10 (fee 1); b forwards 11 (fee 1.1): compounded.
        assert graph.path_fee(path, 10.0) == pytest.approx(2.1)
        amounts = graph.path_hop_amounts(path, 10.0)
        assert amounts == pytest.approx([12.1, 11.0, 10.0])

    def test_legacy_graph_keeps_flat_sum(self):
        graph = self._line()
        assign_uniform_fees(graph, base=0.0, rate=0.1)
        assert not graph.policy_aware
        # Flat per-hop sum on the delivered amount (sender edge
        # included), byte-identical to the pre-policy library.
        assert graph.path_fee(["a", "b", "c", "d"], 10.0) == pytest.approx(
            3.0
        )
