"""Tests for node handlers and the simulated network: probe, 2PC flows."""

import pytest

from repro.network.topology import line_topology
from repro.protocol.driver import PaymentDriver
from repro.protocol.messages import Message, MessageType
from repro.protocol.network import ProtocolNetwork


@pytest.fixture
def net():
    return ProtocolNetwork(line_topology(4, balance=100.0))


@pytest.fixture
def driver(net):
    return PaymentDriver(net, sender=0, txid=1)


class TestProbeFlow:
    def test_probe_returns_both_directions(self, driver):
        forward, reverse = driver.probe([0, 1, 2, 3])
        assert forward == [100.0, 100.0, 100.0]
        assert reverse == [100.0, 100.0, 100.0]

    def test_probe_counts_messages(self, net, driver):
        driver.probe([0, 1, 2, 3])
        # PROBE visits 0,1,2,3 (4 handling events) and PROBE_ACK 3,2,1,0.
        assert net.stats.delivered == 8
        assert net.stats.by_type[MessageType.PROBE] == 4

    def test_probe_advances_clock(self, net, driver):
        before = net.queue.now
        driver.probe([0, 1, 2, 3])
        assert net.queue.now > before


class TestCommitFlow:
    def test_successful_commit_escrows(self, net, driver):
        sub, ok = driver.commit_one([0, 1, 2], 40.0)
        assert ok
        # Funds are held, not yet moved.
        assert net.graph.channel(0, 1).balance(0, 1) == 60.0
        assert net.graph.channel(1, 0).balance(1, 0) == 100.0
        assert net.total_escrow() == pytest.approx(80.0)

    def test_confirm_settles(self, net, driver):
        sub, ok = driver.commit_one([0, 1, 2], 40.0)
        driver.confirm([sub])
        assert net.total_escrow() == 0.0
        assert net.graph.balance(0, 1) == 60.0
        assert net.graph.balance(1, 0) == 140.0
        assert net.graph.balance(2, 1) == 140.0

    def test_reverse_releases(self, net, driver):
        sub, ok = driver.commit_one([0, 1, 2], 40.0)
        driver.reverse([sub])
        assert net.total_escrow() == 0.0
        assert net.graph.balance(0, 1) == 100.0

    def test_insufficient_balance_nacks(self, net, driver):
        net.graph.channel(1, 2).transfer(1, 2, 95.0)
        sub, ok = driver.commit_one([0, 1, 2, 3], 40.0)
        assert not ok
        # Hop 0->1 escrowed before the bounce; REVERSE cleans it up.
        assert net.total_escrow() == pytest.approx(40.0)
        driver.reverse([sub])
        assert net.total_escrow() == 0.0
        assert net.graph.balance(0, 1) == 100.0

    def test_receiver_gets_funds_only_after_confirm(self, net, driver):
        sub, _ = driver.commit_one([0, 1, 2, 3], 25.0)
        assert net.graph.balance(3, 2) == 100.0
        driver.confirm([sub])
        assert net.graph.balance(3, 2) == 125.0

    def test_concurrent_subpayments_share_round(self, net):
        from repro.network.topology import grid_topology

        grid_net = ProtocolNetwork(grid_topology(3, 3, balance=100.0))
        driver = PaymentDriver(grid_net, sender=0, txid=2)
        results = driver.commit([([0, 1, 2, 5, 8], 30.0), ([0, 3, 6, 7, 8], 30.0)])
        assert all(ok for _, ok in results)
        driver.confirm([sub for sub, _ in results])
        assert grid_net.graph.balance(8, 5) == 130.0
        assert grid_net.graph.balance(8, 7) == 130.0


class TestConservation:
    def test_funds_conserved_through_2pc(self, net, driver):
        funds = net.graph.network_funds()
        sub, ok = driver.commit_one([0, 1, 2, 3], 30.0)
        driver.confirm([sub])
        assert net.graph.network_funds() == pytest.approx(funds)

    def test_funds_conserved_through_reverse(self, net, driver):
        funds = net.graph.network_funds()
        sub, _ = driver.commit_one([0, 1, 2, 3], 30.0)
        driver.reverse([sub])
        assert net.graph.network_funds() == pytest.approx(funds)


class TestNetworkPlumbing:
    def test_unknown_node_rejected(self, net):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            net.node(99)

    def test_wire_bytes_counted(self, net, driver):
        driver.probe([0, 1])
        assert net.stats.bytes_on_wire > 0

    def test_misdelivered_message_rejected(self, net):
        from repro.errors import ProtocolError

        message = Message(trans_id="x", mtype=MessageType.PROBE, path=(1, 2))
        with pytest.raises(ProtocolError):
            net.node(0).handle(message, net)
