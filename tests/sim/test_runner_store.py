"""Sweep/comparison resume semantics through the experiment store.

The satellite requirement: kill a sweep mid-way, re-invoke it, and the
completed cells must not be recomputed while the merged results stay
identical to a clean serial run.
"""

import random

import pytest

from repro.eval.store import ExperimentStore
from repro.network.topology import grid_topology
from repro.sim.factories import flash_factory, shortest_path_factory
from repro.sim.runner import run_comparison, sweep
from repro.traces.generators import generate_ripple_workload

FACTORIES = {
    "Flash": flash_factory(k=5, m=2),
    "Shortest Path": shortest_path_factory(),
}


class CountingScenario:
    """A seeded grid scenario that counts builds and can be armed to
    blow up on a chosen swept value (simulating a mid-sweep kill)."""

    def __init__(self, explode_on=None):
        self.builds = []
        self.explode_on = explode_on

    def __call__(self, value):
        def build(rng: random.Random):
            if value == self.explode_on:
                raise RuntimeError(f"killed at value {value}")
            self.builds.append(value)
            graph = grid_topology(4, 4, balance=100.0 * value)
            workload = generate_ripple_workload(rng, graph.nodes, 30)
            return graph, workload

        return build


class TestComparisonResume:
    def test_resumed_comparison_matches_clean_run(self, tmp_path):
        scenario = CountingScenario()
        clean = run_comparison(scenario(1.0), FACTORIES, runs=3, base_seed=5)
        store = ExperimentStore(tmp_path)
        first = run_comparison(
            scenario(1.0),
            FACTORIES,
            runs=3,
            base_seed=5,
            store=store,
            experiment="grid",
        )
        resumed = run_comparison(
            scenario(1.0),
            FACTORIES,
            runs=3,
            base_seed=5,
            store=store,
            experiment="grid",
        )
        assert first == clean
        assert resumed == clean

    def test_resume_skips_recomputation(self, tmp_path):
        store = ExperimentStore(tmp_path)
        scenario = CountingScenario()
        run_comparison(
            scenario(1.0),
            FACTORIES,
            runs=2,
            base_seed=5,
            store=store,
            experiment="grid",
        )
        builds_after_first = len(scenario.builds)
        run_comparison(
            scenario(1.0),
            FACTORIES,
            runs=2,
            base_seed=5,
            store=store,
            experiment="grid",
        )
        assert len(scenario.builds) == builds_after_first

    def test_extending_runs_only_computes_new_cells(self, tmp_path):
        store = ExperimentStore(tmp_path)
        scenario = CountingScenario()
        run_comparison(
            scenario(1.0),
            FACTORIES,
            runs=2,
            base_seed=5,
            store=store,
            experiment="grid",
        )
        scenario.builds.clear()
        extended = run_comparison(
            scenario(1.0),
            FACTORIES,
            runs=4,
            base_seed=5,
            store=store,
            experiment="grid",
        )
        assert len(scenario.builds) == 2  # only run indices 2 and 3
        clean = run_comparison(scenario(1.0), FACTORIES, runs=4, base_seed=5)
        assert extended == clean

    def test_different_cell_params_do_not_collide(self, tmp_path):
        store = ExperimentStore(tmp_path)
        scenario = CountingScenario()
        for variant, value in (("a", 1.0), ("b", 2.0)):
            run_comparison(
                scenario(value),
                FACTORIES,
                runs=1,
                store=store,
                experiment="grid",
                cell_params={"variant": variant},
            )
        # Both variants ran (distinct hashes -> four distinct cells) ...
        assert len(store) == 4
        assert len({r["params_hash"] for r in store.records()}) == 2
        # ... and both scenario variants were actually built.
        assert scenario.builds == [1.0, 2.0]

    def test_callable_scenario_requires_experiment_name(self, tmp_path):
        with pytest.raises(ValueError, match="experiment"):
            run_comparison(
                CountingScenario()(1.0),
                FACTORIES,
                runs=1,
                store=ExperimentStore(tmp_path),
            )

    def test_registered_name_defaults_experiment(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_comparison("testbed-smallworld", FACTORIES, runs=1, store=store)
        (record, *_) = store.records()
        assert record["scenario"] == "testbed-smallworld"


class TestSweepResume:
    def test_killed_sweep_resumes_without_recomputation(self, tmp_path):
        values = [1.0, 2.0, 3.0]
        clean = sweep(values, CountingScenario(), FACTORIES, runs=2, base_seed=3)

        store = ExperimentStore(tmp_path)
        killed = CountingScenario(explode_on=3.0)
        with pytest.raises(RuntimeError, match="killed at value"):
            sweep(
                values,
                killed,
                FACTORIES,
                runs=2,
                base_seed=3,
                store=store,
                experiment="grid-sweep",
            )
        # Values 1.0 and 2.0 completed before the kill and are on disk.
        assert len(store) == 8  # 2 values x 2 runs x 2 schemes

        resumed_scenario = CountingScenario()
        resumed = sweep(
            values,
            resumed_scenario,
            FACTORIES,
            runs=2,
            base_seed=3,
            store=store,
            experiment="grid-sweep",
        )
        # Only the killed value's runs were rebuilt...
        assert resumed_scenario.builds == [3.0, 3.0]
        # ...and the merged series is identical to the clean serial sweep.
        assert resumed == clean

    def test_resumed_tables_byte_identical(self, tmp_path):
        from repro.sim import format_series

        values = [1.0, 2.0]

        def render(series):
            return format_series(
                "scale",
                values,
                {
                    name: [m.success_volume for m in metrics]
                    for name, metrics in series.items()
                },
                "volume",
            )

        clean = render(
            sweep(values, CountingScenario(), FACTORIES, runs=2, base_seed=1)
        )
        store = ExperimentStore(tmp_path)
        killed = CountingScenario(explode_on=2.0)
        with pytest.raises(RuntimeError):
            sweep(
                values,
                killed,
                FACTORIES,
                runs=2,
                base_seed=1,
                store=store,
                experiment="s",
            )
        resumed = render(
            sweep(
                values,
                CountingScenario(),
                FACTORIES,
                runs=2,
                base_seed=1,
                store=store,
                experiment="s",
            )
        )
        assert resumed == clean

    def test_parallel_sweep_store_matches_serial(self, tmp_path):
        values = [1.0, 2.0]
        serial_store = ExperimentStore(tmp_path / "serial")
        parallel_store = ExperimentStore(tmp_path / "parallel")
        serial = sweep(
            values,
            CountingScenario(),
            FACTORIES,
            runs=3,
            base_seed=2,
            store=serial_store,
            experiment="s",
        )
        parallel = sweep(
            values,
            CountingScenario(),
            FACTORIES,
            runs=3,
            base_seed=2,
            workers=2,
            store=parallel_store,
            experiment="s",
        )
        assert serial == parallel
        assert (
            serial_store.completed_cells() == parallel_store.completed_cells()
        )
        serial_metrics = {
            cell: record["metrics"]
            for cell, record in serial_store.load().items()
        }
        parallel_metrics = {
            cell: record["metrics"]
            for cell, record in parallel_store.load().items()
        }
        assert serial_metrics == parallel_metrics
        # No leftover shards after the pool drained.
        assert not list((tmp_path / "parallel").glob("records.shard-*"))

    def test_orphaned_shards_count_as_completed_on_resume(self, tmp_path):
        # A SIGKILLed parent never reaches the pool's merge_shards();
        # the next invocation must fold the shards in, not recompute.
        store = ExperimentStore(tmp_path)
        seeded = ExperimentStore(tmp_path / "seed-source")
        scenario = CountingScenario()
        run_comparison(
            scenario(1.0),
            FACTORIES,
            runs=2,
            base_seed=6,
            store=seeded,
            experiment="grid",
        )
        # Simulate the kill: completed cells exist only as a shard.
        for record in seeded.records():
            store.shard_append("orphan", record)
        assert len(store) == 0

        resumed_scenario = CountingScenario()
        resumed = run_comparison(
            resumed_scenario(1.0),
            FACTORIES,
            runs=2,
            base_seed=6,
            store=store,
            experiment="grid",
        )
        assert resumed_scenario.builds == []  # nothing recomputed
        assert not list(tmp_path.glob("records.shard-*"))
        clean = run_comparison(scenario(1.0), FACTORIES, runs=2, base_seed=6)
        assert resumed == clean

    def test_parallel_resume_after_serial_start(self, tmp_path):
        values = [1.0, 2.0, 3.0]
        store = ExperimentStore(tmp_path)
        killed = CountingScenario(explode_on=2.0)
        with pytest.raises(RuntimeError):
            sweep(
                values,
                killed,
                FACTORIES,
                runs=2,
                base_seed=4,
                store=store,
                experiment="s",
            )
        resumed = sweep(
            values,
            CountingScenario(),
            FACTORIES,
            runs=2,
            base_seed=4,
            workers=2,
            store=store,
            experiment="s",
        )
        clean = sweep(values, CountingScenario(), FACTORIES, runs=2, base_seed=4)
        assert resumed == clean
