"""Testbed routing strategies: Flash, Spider, and SP over the protocol.

These are the §5 incarnations of the routing schemes: instead of reading a
simulator view, they learn balances through PROBE rounds and move funds
through the two-phase commit, so every overhead appears as simulated time
(the processing-delay metric of Figs 12 and 13).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.core.fee_optimizer import split_payment
from repro.core.maxflow import find_elephant_paths
from repro.core.routing_table import RoutingTable
from repro.network.channel import NodeId
from repro.network.paths import Adjacency, bfs_shortest_path, edge_disjoint_shortest_paths
from repro.network.view import ProbeResult
from repro.baselines.spider import SPIDER_NUM_PATHS, waterfill
from repro.protocol.driver import PaymentDriver, SubPayment
from repro.protocol.network import ProtocolNetwork
from repro.traces.workload import Transaction

_EPS = 1e-9

Path = list[NodeId]


@dataclass(frozen=True)
class TestbedOutcome:
    """Per-payment result in the testbed."""

    success: bool
    delivered: float
    elapsed: float
    probe_messages: int
    is_mouse: bool


class _DriverProbeAdapter:
    """Adapts a :class:`PaymentDriver` to the probe interface Algorithm 1
    expects, so the exact same ``find_elephant_paths`` code runs on the
    testbed as in the trace simulator."""

    def __init__(self, driver: PaymentDriver, network: ProtocolNetwork) -> None:
        self._driver = driver
        self._network = network

    def probe_path(self, path: Path) -> ProbeResult:
        forward, reverse = self._driver.probe(path)
        fees = tuple(
            self._network.graph.fee_policy(u, v) for u, v in zip(path, path[1:])
        )
        return ProbeResult(tuple(path), tuple(forward), tuple(reverse), fees)


class TestbedStrategy(abc.ABC):
    """A sender-side routing strategy speaking the testbed protocol."""

    name: str = "strategy"

    def __init__(self, network: ProtocolNetwork, rng: random.Random) -> None:
        self.network = network
        self.rng = rng
        self.topology: Adjacency = network.graph.adjacency()

    def execute(self, transaction: Transaction, is_mouse: bool) -> TestbedOutcome:
        """Run the full protocol for one payment; time it in simulated time."""
        start = self.network.queue.now
        driver = PaymentDriver(self.network, transaction.sender, transaction.txid)
        success = self._run(driver, transaction)
        elapsed = self.network.queue.now - start
        return TestbedOutcome(
            success=success,
            delivered=transaction.amount if success else 0.0,
            elapsed=elapsed,
            probe_messages=driver.probe_messages,
            is_mouse=is_mouse,
        )

    @abc.abstractmethod
    def _run(self, driver: PaymentDriver, transaction: Transaction) -> bool:
        """Route one payment; return success."""


class ShortestPathStrategy(TestbedStrategy):
    """SP: one COMMIT on the fewest-hop path; CONFIRM or REVERSE."""

    name = "SP"

    def __init__(self, network: ProtocolNetwork, rng: random.Random) -> None:
        super().__init__(network, rng)
        self._cache: dict[tuple[NodeId, NodeId], Path | None] = {}

    def _path(self, source: NodeId, target: NodeId) -> Path | None:
        pair = (source, target)
        if pair not in self._cache:
            self._cache[pair] = bfs_shortest_path(self.topology, source, target)
        return self._cache[pair]

    def _run(self, driver: PaymentDriver, transaction: Transaction) -> bool:
        path = self._path(transaction.sender, transaction.receiver)
        if path is None:
            return False
        sub, ok = driver.commit_one(path, transaction.amount)
        if ok:
            driver.confirm([sub])
            return True
        driver.reverse([sub])
        return False


class SpiderStrategy(TestbedStrategy):
    """Spider: probe 4 edge-disjoint paths, waterfill, 2PC."""

    name = "Spider"

    def __init__(
        self,
        network: ProtocolNetwork,
        rng: random.Random,
        num_paths: int = SPIDER_NUM_PATHS,
    ) -> None:
        super().__init__(network, rng)
        self.num_paths = num_paths
        self._cache: dict[tuple[NodeId, NodeId], list[Path]] = {}

    def _paths(self, source: NodeId, target: NodeId) -> list[Path]:
        pair = (source, target)
        if pair not in self._cache:
            self._cache[pair] = edge_disjoint_shortest_paths(
                self.topology, source, target, self.num_paths
            )
        return self._cache[pair]

    def _run(self, driver: PaymentDriver, transaction: Transaction) -> bool:
        paths = self._paths(transaction.sender, transaction.receiver)
        if not paths:
            return False
        capacities = [min(driver.probe(path)[0]) for path in paths]
        allocations = waterfill(capacities, transaction.amount)
        if allocations is None:
            return False
        requests = [
            (path, amount)
            for path, amount in zip(paths, allocations)
            if amount > _EPS
        ]
        if not requests:
            return False
        results = driver.commit(requests)
        committed = [sub for sub, _ in results]
        if all(ok for _, ok in results):
            driver.confirm(committed)
            return True
        driver.reverse(committed)
        return False


class FlashStrategy(TestbedStrategy):
    """Flash over the protocol: Algorithm 1 + split for elephants, routing
    table + trial-and-error for mice (§5.2 parameters: k=20, m=4)."""

    name = "Flash"

    def __init__(
        self,
        network: ProtocolNetwork,
        rng: random.Random,
        threshold: float,
        k: int = 20,
        m: int = 4,
        optimize_fees: bool = False,
    ) -> None:
        super().__init__(network, rng)
        self.threshold = threshold
        self.k = k
        self.m = m
        self.optimize_fees = optimize_fees
        self.table = RoutingTable(m=m)

    def _run(self, driver: PaymentDriver, transaction: Transaction) -> bool:
        if transaction.amount >= self.threshold:
            return self._run_elephant(driver, transaction)
        return self._run_mouse(driver, transaction)

    def _run_elephant(self, driver: PaymentDriver, transaction: Transaction) -> bool:
        adapter = _DriverProbeAdapter(driver, self.network)
        search = find_elephant_paths(
            self.topology,
            adapter,
            transaction.sender,
            transaction.receiver,
            transaction.amount,
            self.k,
        )
        if not search.satisfied:
            return False
        split = split_payment(
            search, transaction.amount, optimize_fees=self.optimize_fees
        )
        if split.total + _EPS < transaction.amount:
            return False
        results = driver.commit(
            [(list(path), amount) for path, amount in split.transfers]
        )
        committed = [sub for sub, _ in results]
        if all(ok for _, ok in results):
            driver.confirm(committed)
            return True
        driver.reverse(committed)
        return False

    def _run_mouse(self, driver: PaymentDriver, transaction: Transaction) -> bool:
        entry = self.table.lookup(
            transaction.sender,
            transaction.receiver,
            self.topology,
            now=transaction.time,
        )
        if not entry.paths:
            return False
        order = list(entry.paths)
        self.rng.shuffle(order)
        committed: list[SubPayment] = []
        remaining = transaction.amount
        dead: list[Path] = []
        for path in order:
            if remaining <= _EPS:
                break
            sub, ok = driver.commit_one(path, remaining)
            if ok:
                committed.append(sub)
                remaining = 0.0
                break
            # Full amount bounced: roll back its partial escrows, probe for
            # the effective capacity, and ship what fits.
            driver.reverse([sub])
            forward, _ = driver.probe(path)
            effective = min(forward)
            if effective <= _EPS:
                dead.append(path)
                continue
            partial = min(effective, remaining)
            sub, ok = driver.commit_one(path, partial)
            if ok:
                committed.append(sub)
                remaining -= partial
            else:
                driver.reverse([sub])
        for dead_path in dead:
            self.table.replace_path(
                transaction.sender, transaction.receiver, dead_path, self.topology
            )
        if remaining <= _EPS:
            driver.confirm(committed)
            return True
        driver.reverse(committed)
        return False
